#include "core/shard_engine.h"

#include <algorithm>
#include <barrier>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <thread>
#include <utility>

#include "net/port.h"

namespace tcpdyn::core {

// ------------------------------------------------------------ partitioner

ShardPlan plan_shards(const Topology& topo, const FaultPlan& faults,
                      std::size_t shards) {
  const std::size_t n = topo.node_count();
  ShardPlan plan;
  plan.shard_of.assign(n, 0);
  if (n == 0 || shards <= 1) return plan;

  // Effective minimum propagation delay per link: the static delay, lowered
  // by any scripted delay change targeting the link. A cut across a link
  // promises arrivals at least `lookahead` in the future, so the promise
  // must survive every delay the fault plan can install.
  const std::vector<LinkSpec>& links = topo.links();
  std::vector<std::int64_t> eff(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) eff[i] = links[i].delay.ns();
  for (const DelayChange& c : faults.delay_changes()) {
    if (!topo.has_node(c.link.a) || !topo.has_node(c.link.b)) continue;
    const std::size_t a = topo.index(c.link.a);
    const std::size_t b = topo.index(c.link.b);
    for (std::size_t i = 0; i < links.size(); ++i) {
      if ((links[i].a == a && links[i].b == b) ||
          (links[i].a == b && links[i].b == a)) {
        eff[i] = std::min(eff[i], c.delay.ns());
      }
    }
  }

  // Contract links too tight to cut: union-find over their endpoints, so
  // region growing below moves whole contracted components at once.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&parent](std::size_t u) {
    while (parent[u] != u) {
      parent[u] = parent[parent[u]];
      u = parent[u];
    }
    return u;
  };
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (eff[i] < kMinCutDelayNs) parent[find(links[i].a)] = find(links[i].b);
  }
  std::vector<std::vector<std::size_t>> members(n);
  for (std::size_t u = 0; u < n; ++u) members[find(u)].push_back(u);

  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj(n);
  for (std::size_t i = 0; i < links.size(); ++i) {
    adj[links[i].a].push_back({i, links[i].b});
    adj[links[i].b].push_back({i, links[i].a});
  }

  // Greedy region growing, lowest-delay frontier edge first (Prim-like), so
  // tightly coupled nodes stay together and the eventual cut falls on the
  // highest-delay links. Seeds are the smallest unassigned node id and ties
  // break on link declaration index: the partition is a pure function of
  // the topology.
  std::vector<std::ptrdiff_t> shard(n, -1);
  const std::size_t target = (n + shards - 1) / shards;
  std::size_t assigned = 0;
  using Edge = std::pair<std::int64_t, std::size_t>;  // (eff delay, link idx)
  std::priority_queue<Edge, std::vector<Edge>, std::greater<Edge>> frontier;
  auto assign_component = [&](std::size_t u, std::size_t to) {
    std::size_t count = 0;
    for (std::size_t v : members[find(u)]) {
      if (shard[v] >= 0) continue;
      shard[v] = static_cast<std::ptrdiff_t>(to);
      ++count;
      for (const auto& [li, peer] : adj[v]) {
        if (shard[peer] < 0) frontier.push({eff[li], li});
      }
    }
    assigned += count;
    return count;
  };

  std::size_t region = 0;
  std::size_t seed = 0;
  while (assigned < n && region + 1 < shards) {
    while (seed < n && shard[seed] >= 0) ++seed;
    frontier = {};
    std::size_t count = assign_component(seed, region);
    while (count < target && !frontier.empty()) {
      const auto [d, li] = frontier.top();
      frontier.pop();
      if (shard[links[li].a] < 0) {
        count += assign_component(links[li].a, region);
      } else if (shard[links[li].b] < 0) {
        count += assign_component(links[li].b, region);
      }
    }
    ++region;
  }
  if (assigned < n) {
    // Everything left forms the final region.
    for (std::size_t u = 0; u < n; ++u) {
      if (shard[u] < 0) shard[u] = static_cast<std::ptrdiff_t>(region);
    }
    ++region;
  }

  plan.shards = region;
  for (std::size_t u = 0; u < n; ++u) {
    plan.shard_of[u] = static_cast<std::size_t>(shard[u]);
  }
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (plan.shard_of[links[i].a] != plan.shard_of[links[i].b]) {
      plan.cut_links.push_back(i);
      plan.lookahead =
          std::min(plan.lookahead, sim::Time::nanoseconds(eff[i]));
    }
  }
  return plan;
}

// ----------------------------------------------------------------- engine

ShardedEngine::ShardedEngine(const TopoSpec& spec, std::size_t shards,
                             AuditMode audit_mode, sim::TimerBackend backend)
    : plan_(plan_shards(spec.topo, spec.faults, shards)),
      warmup_(spec.warmup),
      end_(spec.warmup + spec.duration),
      audit_mode_(audit_mode) {
  const std::size_t n = plan_.shards;
  sims_.reserve(n);
  engine_ctx_.resize(n);  // before any pointer is taken; never resized again
  for (std::size_t s = 0; s < n; ++s) {
    sims_.push_back(std::make_unique<sim::Simulator>(backend));
    // The engine's own setup identity: sorts after every node context at the
    // same key, mirroring the serial run scheduling its bookkeeping events
    // after the model's.
    engine_ctx_[s].id = sim::kDetCtxMaxId;
    sims_[s]->set_det_context(&engine_ctx_[s]);
  }

  exp_ = std::make_unique<Experiment>();
  exp_->network().set_sim_resolver([this](net::NodeId id) -> sim::Simulator& {
    return *sims_[plan_.shard_of.at(id)];
  });
  exp_->set_monitor_mode(spec.monitor_mode);
  exp_->set_flow_instrumentation(spec.per_flow_traces);
  // Nodes are created in declaration order, so the topology index the plan
  // partitioned IS the NodeId the resolver is asked about.
  compiled_ = spec.topo.compile(*exp_);

  if (audit_mode_ == AuditMode::kFull) {
    // One ledger per shard, installed port-by-port and host-by-host along
    // shard-ownership lines (Network::set_observer would alias one observer
    // across threads).
    for (std::size_t s = 0; s < n; ++s) audits_.emplace_back();
    net::Network& net = exp_->network();
    for (const LinkSpec& l : spec.topo.links()) {
      net.port_between(compiled_.node_ids[l.a], compiled_.node_ids[l.b])
          ->set_observer(&audits_[plan_.shard_of[l.a]]);
      net.port_between(compiled_.node_ids[l.b], compiled_.node_ids[l.a])
          ->set_observer(&audits_[plan_.shard_of[l.b]]);
    }
    for (std::size_t u = 0; u < plan_.shard_of.size(); ++u) {
      const net::NodeId id = compiled_.node_ids[u];
      if (net.is_host(id)) {
        net.host(id).set_observer(&audits_[plan_.shard_of[u]]);
      }
    }
  }

  spec.traffic.instantiate(*exp_, compiled_);
  spec.faults.apply(*exp_, compiled_);

  mail_.resize(n);
  for (auto& row : mail_) row.resize(n);
  for (std::size_t li : plan_.cut_links) {
    install_cross_handoff(spec.topo.links()[li].a, spec.topo.links()[li].b);
    install_cross_handoff(spec.topo.links()[li].b, spec.topo.links()[li].a);
  }

  // Monitored drops are the one trace several shards append to (the shared
  // Experiment::drops_ vector); give each monitor its own buffer and merge
  // deterministically after the run.
  if (exp_->monitor_mode_ == MonitorMode::kFull) {
    drop_bufs_.resize(exp_->monitored_.size());  // stable from here on
    for (std::size_t i = 0; i < exp_->monitored_.size(); ++i) {
      auto* raw = exp_->monitored_[i].get();
      auto* buf = &drop_bufs_[i];
      raw->port->on_drop = [raw, buf](sim::Time t, const net::Packet& p) {
        buf->push_back(
            {t.sec(), p.conn, net::is_data(p), p.seq, raw->port->name()});
      };
    }
  }

  // Per-connection traces that serial runs create lazily at the first
  // sample would rehash their map concurrently here; pre-create every entry
  // (empty ones are erased after assembly to match serial output exactly),
  // and snapshot warmup delivery counts shard-locally.
  std::vector<std::vector<tcp::Connection*>> by_dst_shard(n);
  for (auto& c : exp_->conns_) {
    const net::ConnId id = c->config().id;
    delivered_at_warmup_.emplace(id, 0);
    if (exp_->instrument_flows_) {
      instrumented_conns_.push_back(id);
      exp_->rtt_samples_.try_emplace(id);
    }
    by_dst_shard[plan_.shard_of.at(c->config().dst_host)].push_back(c.get());
  }
  for (std::size_t s = 0; s < n; ++s) {
    sims_[s]->set_det_context(&engine_ctx_[s]);
    sims_[s]->schedule_at(
        warmup_, [this, conns = std::move(by_dst_shard[s])] {
          for (tcp::Connection* c : conns) {
            delivered_at_warmup_.find(c->config().id)->second =
                c->receiver().next_expected();
          }
        });
  }
}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::install_cross_handoff(std::size_t from_idx,
                                          std::size_t to_idx) {
  net::OutputPort* port = exp_->network().port_between(
      compiled_.node_ids[from_idx], compiled_.node_ids[to_idx]);
  auto* box = &mail_[plan_.shard_of[from_idx]][plan_.shard_of[to_idx]];
  port->set_cross_handoff(
      [box](net::OutputPort& p, sim::Time at, net::Packet pkt) {
        // Mint exactly the key a local delivery would have received: birth
        // time plus a tie drawn from the shard's active (transmitting-side)
        // context. The mailbox carries it to the peer shard's heap, so the
        // merged order is the order one shard would have produced.
        sim::DetContext* ctx = p.sim().det_context();
        box->push_back({at, static_cast<std::uint64_t>(p.sim().now().ns()),
                        sim::det_tie_next(*ctx), p.peer(), pkt});
      });
}

void ShardedEngine::drain_mail() {
  const std::size_t n = plan_.shards;
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      auto& box = mail_[src][dst];
      for (MailEntry& e : box) {
        if (!audits_.empty()) {
          audits_[src].transfer_in_flight(e.pkt.uid, audits_[dst]);
        }
        auto deliver = [peer = e.peer, p = e.pkt]() mutable {
          peer->receive(std::move(p));
        };
        static_assert(sim::Scheduler::Action::fits<decltype(deliver)>,
                      "mailbox delivery (pointer + Packet) must stay inline");
        sims_[dst]->schedule_at_keyed(e.at, e.seq, e.tie,
                                      e.peer->det_context(),
                                      std::move(deliver));
      }
      box.clear();
    }
  }
}

void ShardedEngine::compute_horizon() {
  sim::Time m = sim::Time::max();
  for (auto& sim : sims_) m = std::min(m, sim->next_event_time());
  if (worker_failed_.load(std::memory_order_relaxed) || m > end_) {
    if (!worker_failed_.load(std::memory_order_relaxed)) {
      // Mirror run_until leaving every clock at the end of the run, so
      // utilization windows and the audit's busy-time bound line up.
      for (auto& sim : sims_) {
        if (sim->now() < end_) sim->advance_clock_to(end_);
      }
    }
    done_ = true;
    return;
  }
  // Events exactly at `end` must execute (run_before is strict), hence the
  // one-nanosecond overshoot; m <= end keeps the sum overflow-free.
  const sim::Time limit = end_ + sim::Time::nanoseconds(1);
  horizon_ = plan_.lookahead < limit - m ? m + plan_.lookahead : limit;
}

void ShardedEngine::round_end() noexcept {
  // std::barrier requires a noexcept completion; any failure here (audit
  // transfer violation surfacing as a throw, allocation) ends the run and
  // is rethrown on the coordinating thread.
  try {
    drain_mail();
    compute_horizon();
  } catch (...) {
    round_error_ = std::current_exception();
    done_ = true;
  }
}

ExperimentResult ShardedEngine::run() {
  if (exp_->ran_) throw std::logic_error("ShardedEngine may only run once");
  exp_->ran_ = true;
  const std::size_t n = plan_.shards;

  compute_horizon();
  if (!done_) {
    if (n == 1) {
      // Degenerate partition: the barrier round collapses to windowed
      // serial execution on the caller's thread.
      while (!done_) {
        sims_[0]->run_before(horizon_);
        drain_mail();
        compute_horizon();
      }
    } else {
      std::barrier sync(static_cast<std::ptrdiff_t>(n),
                        [this]() noexcept { round_end(); });
      std::vector<std::thread> workers;
      workers.reserve(n);
      for (std::size_t s = 0; s < n; ++s) {
        workers.emplace_back([this, s, &sync] {
          // done_ and horizon_ are written only by the barrier completion,
          // whose end synchronizes-with every arrive_and_wait return.
          while (!done_) {
            try {
              sims_[s]->run_before(horizon_);
            } catch (...) {
              if (!worker_failed_.exchange(true)) {
                worker_error_ = std::current_exception();
              }
            }
            sync.arrive_and_wait();
          }
        });
      }
      for (std::thread& w : workers) w.join();
      if (round_error_) std::rethrow_exception(round_error_);
      if (worker_error_) std::rethrow_exception(worker_error_);
    }
  }

  // Merge per-monitor drop buffers into the shared trace: stable sort by
  // time keeps (monitor order, per-port order) on ties, a pure function of
  // the merged event sequence.
  if (!drop_bufs_.empty()) {
    std::size_t total = 0;
    for (const auto& buf : drop_bufs_) total += buf.size();
    std::vector<DropEvent> merged;
    merged.reserve(total);
    for (auto& buf : drop_bufs_) {
      std::move(buf.begin(), buf.end(), std::back_inserter(merged));
    }
    std::stable_sort(
        merged.begin(), merged.end(),
        [](const DropEvent& a, const DropEvent& b) { return a.time < b.time; });
    exp_->drops_ = std::move(merged);
  }

  ExperimentResult r =
      exp_->assemble_result(warmup_, end_, delivered_at_warmup_);
  // Serial runs create a connection's RTT series lazily at its first
  // accepted sample; drop the pre-created empty ones so the assembled
  // result is byte-identical.
  for (net::ConnId id : instrumented_conns_) {
    auto it = r.rtt_samples.find(id);
    if (it != r.rtt_samples.end() && it->second.empty()) {
      r.rtt_samples.erase(it);
    }
  }

  if (audit_mode_ == AuditMode::kFull) {
    Audit& merged = audits_.front();
    for (std::size_t s = 1; s < audits_.size(); ++s) {
      merged.absorb(std::move(audits_[s]));
    }
    AuditReport report = merged.finalize(exp_->net_, end_);
    if (!report.ok) {
      throw std::logic_error("conservation audit failed:\n" +
                             report.to_string());
    }
    r.audit = report.totals;
  } else if (audit_mode_ == AuditMode::kCounters) {
    AuditReport report = audit_counters_check(exp_->net_);
    if (!report.ok) {
      throw std::logic_error("conservation counter check failed:\n" +
                             report.to_string());
    }
    r.audit = report.totals;
  }
  return r;
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) total += sim->events_executed();
  return total;
}

}  // namespace tcpdyn::core
