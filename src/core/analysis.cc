#include "core/analysis.h"

#include <algorithm>
#include <cmath>

namespace tcpdyn::core {

const char* to_string(SyncMode mode) {
  switch (mode) {
    case SyncMode::kInPhase: return "in-phase";
    case SyncMode::kOutOfPhase: return "out-of-phase";
    case SyncMode::kUnclassified: return "unclassified";
  }
  return "?";
}

SyncResult classify_sync(const util::TimeSeries& a, const util::TimeSeries& b,
                         double from, double to, double dt, double threshold) {
  SyncResult r;
  const std::vector<double> sa = util::detrend(a.resample(from, to, dt));
  const std::vector<double> sb = util::detrend(b.resample(from, to, dt));
  const util::Correlation c = util::pearson_checked(sa, sb);
  r.correlation = c.rho;
  r.degenerate = c.degenerate;
  if (c.degenerate) return r;  // no signal: stays kUnclassified
  if (r.correlation > threshold) {
    r.mode = SyncMode::kInPhase;
  } else if (r.correlation < -threshold) {
    r.mode = SyncMode::kOutOfPhase;
  }
  return r;
}

ClusteringStats clustering(const PortTrace& port, double from, double to) {
  std::vector<std::uint32_t> conns;
  conns.reserve(port.departures.size());
  for (const auto& d : port.departures) {
    if (d.time >= from && d.time <= to) conns.push_back(d.conn);
  }
  const util::RunLengthStats rl = util::run_lengths(conns);
  ClusteringStats c;
  c.departures = rl.total;
  c.same_successor_fraction = rl.same_successor_fraction;
  c.mean_run_length = rl.mean_run_length;
  c.max_run_length = rl.max_run_length;
  return c;
}

AckCompressionStats ack_compression(std::span<const double> ack_times,
                                    double from, double to,
                                    double data_tx_time) {
  std::vector<double> gaps;
  double prev = -1.0;
  for (double t : ack_times) {
    if (t < from || t > to) continue;
    if (prev >= 0.0) gaps.push_back(t - prev);
    prev = t;
  }
  AckCompressionStats s;
  s.gaps = gaps.size();
  if (gaps.empty()) return s;
  s.min_gap = *std::min_element(gaps.begin(), gaps.end());
  s.p10_gap = util::percentile(gaps, 10.0);
  s.median_gap = util::percentile(gaps, 50.0);
  std::size_t compressed = 0;
  for (double g : gaps) {
    if (g < 0.5 * data_tx_time) ++compressed;
  }
  s.compressed_fraction =
      static_cast<double>(compressed) / static_cast<double>(gaps.size());
  return s;
}

EpochStats analyze_epochs(std::span<const DropEvent> drops, double from,
                          double to, double gap) {
  EpochStats s;
  std::size_t data_drops = 0, all_drops = 0;
  for (const DropEvent& d : drops) {
    if (d.time < from || d.time > to) continue;
    ++all_drops;
    if (d.data) ++data_drops;
    if (s.epochs.empty() || d.time - s.epochs.back().end > gap) {
      s.epochs.push_back({d.time, d.time, {}, 0});
    }
    Epoch& e = s.epochs.back();
    e.end = d.time;
    ++e.drops_by_conn[d.conn];
    ++e.total_drops;
  }
  if (all_drops > 0) {
    s.data_drop_fraction =
        static_cast<double>(data_drops) / static_cast<double>(all_drops);
  }
  if (s.epochs.empty()) return s;

  double drop_sum = 0.0;
  std::size_t multi = 0, single = 0;
  for (const Epoch& e : s.epochs) {
    drop_sum += e.total_drops;
    if (e.drops_by_conn.size() > 1) ++multi;
    if (e.drops_by_conn.size() == 1) ++single;
  }
  const double n = static_cast<double>(s.epochs.size());
  s.mean_drops_per_epoch = drop_sum / n;
  s.multi_loser_fraction = static_cast<double>(multi) / n;
  s.single_loser_fraction = static_cast<double>(single) / n;
  if (s.epochs.size() > 1) {
    s.mean_interval =
        (s.epochs.back().start - s.epochs.front().start) / (n - 1.0);
    // Alternation among consecutive single-loser epochs.
    std::size_t pairs = 0, alternating = 0;
    for (std::size_t i = 1; i < s.epochs.size(); ++i) {
      const Epoch& a = s.epochs[i - 1];
      const Epoch& b = s.epochs[i];
      if (a.drops_by_conn.size() == 1 && b.drops_by_conn.size() == 1) {
        ++pairs;
        if (a.drops_by_conn.begin()->first != b.drops_by_conn.begin()->first) {
          ++alternating;
        }
      }
    }
    if (pairs > 0) {
      s.loser_alternation_fraction =
          static_cast<double>(alternating) / static_cast<double>(pairs);
    }
  }
  return s;
}

FluctuationStats rapid_fluctuations(const util::TimeSeries& queue, double from,
                                    double to, double data_tx_time) {
  FluctuationStats f;
  if (data_tx_time <= 0.0 || to <= from) return f;
  // Sample finely relative to the window, then slide a one-transmission-time
  // window and record the range within it.
  const double dt = data_tx_time / 8.0;
  const std::vector<double> samples = queue.resample(from, to, dt);
  const std::size_t w = 8;  // samples per window
  if (samples.size() <= w) return f;
  double range_sum = 0.0;
  std::size_t windows = 0;
  for (std::size_t i = 0; i + w < samples.size(); ++i) {
    const auto [mn, mx] =
        std::minmax_element(samples.begin() + static_cast<std::ptrdiff_t>(i),
                            samples.begin() + static_cast<std::ptrdiff_t>(i + w + 1));
    const double range = *mx - *mn;
    range_sum += range;
    f.max_range = std::max(f.max_range, range);
    ++windows;
  }
  f.mean_range = range_sum / static_cast<double>(windows);
  // Burst rise: largest net increase across one data transmission time.
  for (std::size_t i = 0; i + w < samples.size(); ++i) {
    f.max_burst_rise = std::max(f.max_burst_rise, samples[i + w] - samples[i]);
  }
  return f;
}

std::optional<double> oscillation_period(const util::TimeSeries& series,
                                         double from, double to, double dt) {
  const std::vector<double> samples =
      util::detrend(series.resample(from, to, dt));
  const auto lag = util::dominant_period(samples, /*min_lag=*/2);
  if (!lag) return std::nullopt;
  return static_cast<double>(*lag) * dt;
}

std::vector<double> throughput_series(const PortTrace& port, net::ConnId conn,
                                      double from, double to, double bin) {
  std::vector<double> out;
  if (bin <= 0.0 || to <= from) return out;
  const auto bins = static_cast<std::size_t>((to - from) / bin);
  out.assign(bins, 0.0);
  for (const Departure& d : port.departures) {
    if (!d.data || d.conn != conn || d.time < from || d.time >= to) continue;
    const auto i = static_cast<std::size_t>((d.time - from) / bin);
    if (i < bins) out[i] += 1.0;
  }
  for (double& v : out) v /= bin;
  return out;
}

SyncResult classify_throughput_alternation(const PortTrace& port_a,
                                           net::ConnId conn_a,
                                           const PortTrace& port_b,
                                           net::ConnId conn_b, double from,
                                           double to, double bin) {
  SyncResult r;
  const auto a = util::detrend(throughput_series(port_a, conn_a, from, to,
                                                 bin));
  const auto b = util::detrend(throughput_series(port_b, conn_b, from, to,
                                                 bin));
  const util::Correlation c = util::pearson_checked(a, b);
  r.correlation = c.rho;
  r.degenerate = c.degenerate;
  if (c.degenerate) return r;  // no signal: stays kUnclassified
  if (r.correlation > 0.2) {
    r.mode = SyncMode::kInPhase;
  } else if (r.correlation < -0.2) {
    r.mode = SyncMode::kOutOfPhase;
  }
  return r;
}

EffectivePipe effective_pipe(const ExperimentResult& result, net::ConnId conn,
                             double from, double to) {
  EffectivePipe ep;
  if (to <= from) return ep;
  auto it = result.rtt_samples.find(conn);
  if (it != result.rtt_samples.end()) {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& [t, rtt] : it->second) {
      if (t < from || t > to) continue;
      sum += rtt;
      ++n;
    }
    if (n > 0) ep.mean_rtt = sum / static_cast<double>(n);
  }
  auto del = result.delivered.find(conn);
  if (del != result.delivered.end()) {
    ep.goodput_pps = static_cast<double>(del->second) / (to - from);
  }
  ep.packets = ep.goodput_pps * ep.mean_rtt;
  return ep;
}

std::optional<double> cwnd_growth_exponent(const util::TimeSeries& cwnd,
                                           double from, double to,
                                           double dt) {
  if (to <= from || dt <= 0.0) return std::nullopt;
  std::vector<double> log_t, log_w;
  for (double t = from + dt; t <= to; t += dt) {
    const double w = cwnd.value_at(t);
    if (w <= 0.0) continue;
    log_t.push_back(std::log(t - from));
    log_w.push_back(std::log(w));
  }
  if (log_t.size() < 4) return std::nullopt;
  // Least-squares slope of log_w on log_t.
  const double mt = util::mean(log_t);
  const double mw = util::mean(log_w);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < log_t.size(); ++i) {
    sxy += (log_t[i] - mt) * (log_w[i] - mw);
    sxx += (log_t[i] - mt) * (log_t[i] - mt);
  }
  if (sxx <= 0.0) return std::nullopt;
  return sxy / sxx;
}

double jain_fairness(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

FlowSummary summarize_flows(const ExperimentResult& result) {
  FlowSummary fs;
  const double window = result.t_end - result.t_start;
  if (window <= 0.0) return fs;
  std::vector<double> goodputs;
  goodputs.reserve(result.delivered.size());
  for (const auto& [conn, packets] : result.delivered) {
    goodputs.push_back(static_cast<double>(packets) / window);
  }
  fs.flows = goodputs.size();
  if (goodputs.empty()) return fs;
  fs.goodput_min = *std::min_element(goodputs.begin(), goodputs.end());
  fs.goodput_max = *std::max_element(goodputs.begin(), goodputs.end());
  fs.goodput_mean = util::mean(goodputs);
  fs.jain = jain_fairness(goodputs);
  return fs;
}

WaveStats analyze_waves(std::span<const PortTrace> ports, double from,
                        double to, double dt, double max_lag_sec) {
  WaveStats w;
  w.hops = ports.size();
  if (ports.empty() || to <= from || dt <= 0.0) {
    w.degenerate = true;
    return w;
  }
  std::vector<std::vector<double>> series;
  series.reserve(ports.size());
  double amp_sum = 0.0, util_sum = 0.0;
  for (const PortTrace& p : ports) {
    series.push_back(util::detrend(p.queue.resample(from, to, dt)));
    amp_sum += util::summarize(series.back()).stddev;
    util_sum += p.utilization;
  }
  const double n_ports = static_cast<double>(ports.size());
  w.mean_amplitude = amp_sum / n_ports;
  w.mean_utilization = util_sum / n_ports;
  if (ports.size() < 2) {
    w.degenerate = true;
    return w;
  }
  const auto max_lag = static_cast<std::size_t>(max_lag_sec / dt);

  // Peak correlation per hop distance: adjacent pairs (d = 1) give the wave
  // speed, the decay over d gives the correlation length.
  std::vector<double> lag_sum(ports.size(), 0.0);
  std::vector<double> rho_sum(ports.size(), 0.0);
  std::vector<std::size_t> pair_count(ports.size(), 0);
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (std::size_t j = i + 1; j < series.size(); ++j) {
      const util::LaggedCorrelation c =
          util::peak_cross_correlation(series[i], series[j], max_lag);
      if (c.degenerate) continue;
      const std::size_t d = j - i;
      lag_sum[d] += static_cast<double>(c.lag) * dt;
      rho_sum[d] += c.rho;
      ++pair_count[d];
    }
  }
  if (pair_count[1] == 0) {
    w.degenerate = true;
    return w;
  }
  w.mean_adjacent_lag_sec =
      lag_sum[1] / static_cast<double>(pair_count[1]);
  w.mean_adjacent_correlation =
      rho_sum[1] / static_cast<double>(pair_count[1]);
  if (w.mean_adjacent_lag_sec != 0.0) {
    w.wave_speed_hops_per_sec = 1.0 / std::abs(w.mean_adjacent_lag_sec);
  }

  // Least-squares fit of ln c(d) = -d / xi + const over distances with a
  // positive mean peak correlation.
  std::vector<double> ds, log_cs;
  for (std::size_t d = 1; d < pair_count.size(); ++d) {
    if (pair_count[d] == 0) continue;
    const double c = rho_sum[d] / static_cast<double>(pair_count[d]);
    if (c <= 0.0) continue;
    ds.push_back(static_cast<double>(d));
    log_cs.push_back(std::log(c));
  }
  if (ds.size() >= 2) {
    const double md = util::mean(ds);
    const double mc = util::mean(log_cs);
    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      sxy += (ds[i] - md) * (log_cs[i] - mc);
      sxx += (ds[i] - md) * (ds[i] - md);
    }
    if (sxx > 0.0 && sxy < 0.0) {
      w.correlation_length_hops = -sxx / sxy;
    }
  }
  return w;
}

double expected_drops_per_epoch(std::size_t tahoe_connections) {
  return static_cast<double>(tahoe_connections);
}

}  // namespace tcpdyn::core
