#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/table.h"

namespace tcpdyn::core {

using util::fmt;
using util::fmt_pct;

void print_summary(std::ostream& os, const std::string& name,
                   const ScenarioSummary& s) {
  os << "== " << name << " ==\n";
  util::Table t({"metric", "value"});
  t.add_row({"measurement window",
             fmt(s.result.t_start, 0) + "s .. " + fmt(s.result.t_end, 0) + "s"});
  t.add_row({"utilization fwd", fmt_pct(s.util_fwd)});
  if (s.result.ports.size() > 1) {
    t.add_row({"utilization rev", fmt_pct(s.util_rev)});
    t.add_row({"queue sync",
               std::string(to_string(s.queue_sync.mode)) +
                   " (rho=" + fmt(s.queue_sync.correlation) + ")" +
                   (s.queue_sync.degenerate ? " [degenerate]" : "")});
  }
  if (s.cwnd_sync.mode != SyncMode::kUnclassified ||
      s.result.cwnd.size() >= 2) {
    t.add_row({"cwnd sync",
               std::string(to_string(s.cwnd_sync.mode)) +
                   " (rho=" + fmt(s.cwnd_sync.correlation) + ")" +
                   (s.cwnd_sync.degenerate ? " [degenerate]" : "")});
  }
  t.add_row({"congestion epochs", std::to_string(s.epochs.epochs.size())});
  if (!s.epochs.epochs.empty()) {
    t.add_row({"drops/epoch (mean)", fmt(s.epochs.mean_drops_per_epoch)});
    t.add_row({"epoch interval (mean)", fmt(s.epochs.mean_interval, 1) + "s"});
    t.add_row({"data-drop fraction", fmt_pct(s.epochs.data_drop_fraction)});
    t.add_row({"single-loser epochs", fmt_pct(s.epochs.single_loser_fraction)});
    t.add_row(
        {"loser alternation", fmt_pct(s.epochs.loser_alternation_fraction)});
  }
  t.add_row({"clustering fwd (mean run)", fmt(s.clustering_fwd.mean_run_length)});
  if (s.result.ports.size() > 1) {
    t.add_row(
        {"clustering rev (mean run)", fmt(s.clustering_rev.mean_run_length)});
  }
  t.add_row({"queue fluct fwd (mean range/tx)", fmt(s.fluct_fwd.mean_range)});
  t.add_row({"queue fluct fwd (max burst rise)", fmt(s.fluct_fwd.max_burst_rise)});
  if (!s.ack.empty()) {
    double max_compressed = 0.0;
    for (const auto& [conn, a] : s.ack) {
      max_compressed = std::max(max_compressed, a.compressed_fraction);
    }
    t.add_row({"ACK-compressed gap fraction (max over conns)",
               fmt_pct(max_compressed)});
  }
  if (s.period_fwd) {
    t.add_row({"fwd queue oscillation period", fmt(*s.period_fwd, 1) + "s"});
  }
  if (s.flows.flows > 2) {
    t.add_row({"flows", std::to_string(s.flows.flows)});
    t.add_row({"flow goodput min/mean/max (pkt/s)",
               fmt(s.flows.goodput_min) + " / " + fmt(s.flows.goodput_mean) +
                   " / " + fmt(s.flows.goodput_max)});
    t.add_row({"Jain fairness", fmt(s.flows.jain)});
  }
  if (s.result.audit.created > 0) {
    const AuditTotals& a = s.result.audit;
    t.add_row({"conservation",
               std::to_string(a.created) + " sent = " +
                   std::to_string(a.delivered) + " delivered + " +
                   std::to_string(a.dropped) + " dropped + " +
                   std::to_string(a.in_queue) + " queued + " +
                   std::to_string(a.in_flight) + " in flight"});
    if (a.drops_down > 0 || a.drops_fault > 0) {
      t.add_row({"drop causes",
                 std::to_string(a.drops_queue) + " queue + " +
                     std::to_string(a.drops_down) + " link-down + " +
                     std::to_string(a.drops_fault) + " wire-fault = " +
                     std::to_string(a.dropped)});
    }
  }
  t.print(os);
}

int print_claims(std::ostream& os, const std::string& name,
                 const std::vector<Claim>& claims) {
  util::Table t({"claim", "paper", "measured", "holds"});
  int failed = 0;
  for (const Claim& c : claims) {
    t.add_row({c.what, c.paper, c.measured, c.holds ? "yes" : "NO"});
    if (!c.holds) ++failed;
  }
  os << "-- paper vs measured: " << name << " --\n";
  t.print(os);
  os << (failed == 0 ? "all claims hold" : std::to_string(failed) +
                                               " claim(s) FAILED")
     << "\n\n";
  return failed;
}

void print_queue_chart(std::ostream& os, const util::TimeSeries& queue,
                       double from, double to, int width, int height,
                       const std::string& title) {
  if (width <= 0 || height <= 0 || to <= from) return;
  const double slice = (to - from) / width;
  std::vector<double> column_max(static_cast<std::size_t>(width), 0.0);
  for (int i = 0; i < width; ++i) {
    const double a = from + i * slice;
    column_max[static_cast<std::size_t>(i)] = queue.max_in(a, a + slice);
  }
  const double peak =
      std::max(1.0, *std::max_element(column_max.begin(), column_max.end()));
  if (!title.empty()) os << title << "  (peak " << fmt(peak, 0) << " pkts)\n";
  for (int row = height; row >= 1; --row) {
    const double level = peak * row / height;
    os << '|';
    for (int i = 0; i < width; ++i) {
      os << (column_max[static_cast<std::size_t>(i)] >= level - 1e-9 ? '#'
                                                                     : ' ');
    }
    os << '\n';
  }
  os << '+' << std::string(static_cast<std::size_t>(width), '-') << "  "
     << fmt(from, 0) << "s.." << fmt(to, 0) << "s\n";
}

}  // namespace tcpdyn::core
