#include "core/scenarios.h"

#include "util/rng.h"

namespace tcpdyn::core {

namespace {

// Staggered start times break the perfect symmetry of simultaneous starts
// (the paper starts connections at random times); deterministic seed keeps
// runs reproducible.
std::vector<sim::Time> start_times(std::size_t n, std::uint64_t seed,
                                   double spread_sec) {
  util::Rng rng(seed);
  std::vector<sim::Time> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(sim::Time::seconds(rng.uniform(0.0, spread_sec)));
  }
  return out;
}

Scenario make_dumbbell_scenario(std::string name, const DumbbellParams& params,
                                std::vector<ConnSpec> conns,
                                sim::Time warmup, sim::Time duration,
                                double epoch_gap, std::uint64_t seed = 42) {
  Scenario s;
  s.name = std::move(name);
  s.exp = std::make_unique<Experiment>();
  s.warmup = warmup;
  s.duration = duration;
  s.epoch_gap_sec = epoch_gap;
  s.dumbbell = params;
  const DumbbellHandles h = build_dumbbell(*s.exp, params);
  const auto starts = start_times(conns.size(), seed, 5.0);
  for (std::size_t i = 0; i < conns.size(); ++i) {
    conns[i].start_time = starts[i];
    // Adaptive (unit-acceleration) connections, for the drops-per-epoch
    // prediction; Reno's window also grows by one per epoch in avoidance.
    if (conns[i].kind != tcp::SenderKind::kFixedWindow) {
      ++s.tahoe_connections;
    }
  }
  add_dumbbell_connections(*s.exp, h, conns);
  return s;
}

}  // namespace

ScenarioSummary run_scenario(Scenario& scenario) {
  return summarize_result(
      scenario.exp->run(scenario.warmup, scenario.duration),
      scenario.epoch_gap_sec);
}

ScenarioSummary summarize_result(ExperimentResult result,
                                 double epoch_gap_sec) {
  ScenarioSummary s;
  s.result = std::move(result);
  const ExperimentResult& r = s.result;
  const double from = r.t_start;
  const double to = r.t_end;

  if (!r.ports.empty()) {
    s.util_fwd = r.ports[0].utilization;
    s.clustering_fwd = clustering(r.ports[0], from, to);
    s.fluct_fwd = rapid_fluctuations(r.ports[0].queue, from, to,
                                     r.data_tx_time);
    s.period_fwd = oscillation_period(r.ports[0].queue, from, to);
  }
  if (r.ports.size() > 1) {
    s.util_rev = r.ports[1].utilization;
    s.clustering_rev = clustering(r.ports[1], from, to);
    s.fluct_rev = rapid_fluctuations(r.ports[1].queue, from, to,
                                     r.data_tx_time);
    s.queue_sync = classify_sync(r.ports[0].queue, r.ports[1].queue, from, to);
  }
  if (r.cwnd.size() >= 2) {
    auto it = r.cwnd.begin();
    const util::TimeSeries& a = it->second;
    const util::TimeSeries& b = std::next(it)->second;
    s.cwnd_sync = classify_sync(a, b, from, to, /*dt=*/0.25);
  }
  s.epochs = analyze_epochs(r.drops, from, to, epoch_gap_sec);
  s.flows = summarize_flows(r);
  for (const auto& [conn, times] : r.ack_arrivals) {
    s.ack[conn] = ack_compression(times, from, to, r.data_tx_time);
  }
  return s;
}

Scenario fig2_one_way(std::size_t conns, double tau_sec, std::size_t buffer) {
  DumbbellParams p;
  p.tau = sim::Time::seconds(tau_sec);
  p.buffer_fwd = net::QueueLimit::of(buffer);
  p.buffer_rev = net::QueueLimit::of(buffer);
  std::vector<ConnSpec> cs(conns);  // all forward, all Tahoe (defaults)
  const bool long_cycle = tau_sec >= 0.5;
  return make_dumbbell_scenario(
      "fig2-one-way", p, std::move(cs),
      sim::Time::seconds(long_cycle ? 150.0 : 100.0),
      sim::Time::seconds(long_cycle ? 600.0 : 400.0),
      /*epoch_gap=*/long_cycle ? 8.0 : 2.0);
}

Scenario fig3_ten_connections(std::size_t buffer, std::size_t per_direction) {
  DumbbellParams p;
  p.tau = sim::Time::seconds(0.01);
  p.buffer_fwd = net::QueueLimit::of(buffer);
  p.buffer_rev = net::QueueLimit::of(buffer);
  std::vector<ConnSpec> cs;
  for (std::size_t i = 0; i < 2 * per_direction; ++i) {
    ConnSpec c;
    c.forward = i < per_direction;
    cs.push_back(c);
  }
  return make_dumbbell_scenario("fig3-ten-connections", p, std::move(cs),
                                sim::Time::seconds(100.0),
                                sim::Time::seconds(400.0),
                                /*epoch_gap=*/2.0);
}

Scenario fig4_twoway(double tau_sec, std::size_t buffer) {
  DumbbellParams p;
  p.tau = sim::Time::seconds(tau_sec);
  p.buffer_fwd = net::QueueLimit::of(buffer);
  p.buffer_rev = net::QueueLimit::of(buffer);
  std::vector<ConnSpec> cs(2);
  cs[0].forward = true;
  cs[1].forward = false;
  return make_dumbbell_scenario("fig4-5-twoway-small-pipe", p, std::move(cs),
                                sim::Time::seconds(100.0),
                                sim::Time::seconds(400.0),
                                /*epoch_gap=*/2.0);
}

Scenario fig6_twoway(double tau_sec, std::size_t buffer) {
  DumbbellParams p;
  p.tau = sim::Time::seconds(tau_sec);
  p.buffer_fwd = net::QueueLimit::of(buffer);
  p.buffer_rev = net::QueueLimit::of(buffer);
  std::vector<ConnSpec> cs(2);
  cs[0].forward = true;
  cs[1].forward = false;
  Scenario s = make_dumbbell_scenario("fig6-7-twoway-large-pipe", p,
                                      std::move(cs), sim::Time::seconds(150.0),
                                      sim::Time::seconds(600.0),
                                      /*epoch_gap=*/8.0);
  return s;
}

Scenario fig8_fixed_window(double tau_sec, std::uint32_t w1,
                           std::uint32_t w2) {
  DumbbellParams p;
  p.tau = sim::Time::seconds(tau_sec);
  p.buffer_fwd = net::QueueLimit::infinite();
  p.buffer_rev = net::QueueLimit::infinite();
  std::vector<ConnSpec> cs(2);
  cs[0].forward = true;
  cs[0].kind = tcp::SenderKind::kFixedWindow;
  cs[0].fixed_window = w1;
  cs[1].forward = false;
  cs[1].kind = tcp::SenderKind::kFixedWindow;
  cs[1].fixed_window = w2;
  return make_dumbbell_scenario(
      tau_sec < 0.5 ? "fig8-fixed-window" : "fig9-fixed-window", p,
      std::move(cs), sim::Time::seconds(60.0), sim::Time::seconds(120.0),
      /*epoch_gap=*/2.0);
}

Scenario zero_ack_fixed(std::uint32_t w1, std::uint32_t w2, double tau_sec) {
  DumbbellParams p;
  p.tau = sim::Time::seconds(tau_sec);
  p.buffer_fwd = net::QueueLimit::infinite();
  p.buffer_rev = net::QueueLimit::infinite();
  std::vector<ConnSpec> cs(2);
  cs[0].forward = true;
  cs[0].kind = tcp::SenderKind::kFixedWindow;
  cs[0].fixed_window = w1;
  cs[0].ack_bytes = 0;
  cs[1].forward = false;
  cs[1].kind = tcp::SenderKind::kFixedWindow;
  cs[1].fixed_window = w2;
  cs[1].ack_bytes = 0;
  return make_dumbbell_scenario("zero-ack-fixed", p, std::move(cs),
                                sim::Time::seconds(60.0),
                                sim::Time::seconds(120.0),
                                /*epoch_gap=*/2.0);
}

Scenario delayed_ack_twoway(std::uint32_t maxwnd, double tau_sec,
                            std::size_t buffer) {
  DumbbellParams p;
  p.tau = sim::Time::seconds(tau_sec);
  p.buffer_fwd = net::QueueLimit::of(buffer);
  p.buffer_rev = net::QueueLimit::of(buffer);
  std::vector<ConnSpec> cs(2);
  cs[0].forward = true;
  cs[1].forward = false;
  for (auto& c : cs) {
    c.delayed_ack = true;
    c.maxwnd = maxwnd;
  }
  return make_dumbbell_scenario("delayed-ack-twoway", p, std::move(cs),
                                sim::Time::seconds(100.0),
                                sim::Time::seconds(400.0),
                                /*epoch_gap=*/2.0);
}

Scenario four_switch_chain(std::size_t connections, std::uint64_t seed) {
  Scenario s;
  s.name = "four-switch-chain";
  s.exp = std::make_unique<Experiment>();
  s.warmup = sim::Time::seconds(100.0);
  s.duration = sim::Time::seconds(300.0);
  s.epoch_gap_sec = 2.0;
  ChainParams p;
  const ChainHandles h = build_chain(*s.exp, p);
  add_chain_connections(*s.exp, h, connections, seed);
  s.tahoe_connections = connections;
  return s;
}

Scenario paced_twoway(double tau_sec, std::size_t buffer) {
  DumbbellParams p;
  p.tau = sim::Time::seconds(tau_sec);
  p.buffer_fwd = net::QueueLimit::of(buffer);
  p.buffer_rev = net::QueueLimit::of(buffer);
  std::vector<ConnSpec> cs(2);
  cs[0].forward = true;
  cs[1].forward = false;
  // Pace at the bottleneck data rate: one 500 B packet per 80 ms.
  const sim::Time interval =
      sim::Time::transmission(500, p.bottleneck_bps);
  for (auto& c : cs) c.pacing_interval = interval;
  return make_dumbbell_scenario("paced-twoway", p, std::move(cs),
                                sim::Time::seconds(100.0),
                                sim::Time::seconds(400.0),
                                /*epoch_gap=*/2.0);
}

Scenario reno_twoway(double tau_sec, std::size_t buffer) {
  DumbbellParams p;
  p.tau = sim::Time::seconds(tau_sec);
  p.buffer_fwd = net::QueueLimit::of(buffer);
  p.buffer_rev = net::QueueLimit::of(buffer);
  std::vector<ConnSpec> cs(2);
  cs[0].forward = true;
  cs[1].forward = false;
  for (auto& c : cs) c.kind = tcp::SenderKind::kReno;
  return make_dumbbell_scenario("reno-twoway", p, std::move(cs),
                                sim::Time::seconds(100.0),
                                sim::Time::seconds(400.0),
                                /*epoch_gap=*/2.0);
}

Scenario random_drop_twoway(double tau_sec, std::size_t buffer) {
  DumbbellParams p;
  p.tau = sim::Time::seconds(tau_sec);
  p.buffer_fwd = net::QueueLimit::of(buffer);
  p.buffer_rev = net::QueueLimit::of(buffer);
  p.bottleneck_policy = net::DropPolicy::kRandomDrop;
  std::vector<ConnSpec> cs(2);
  cs[0].forward = true;
  cs[1].forward = false;
  return make_dumbbell_scenario("random-drop-twoway", p, std::move(cs),
                                sim::Time::seconds(100.0),
                                sim::Time::seconds(400.0),
                                /*epoch_gap=*/2.0);
}

Scenario rtt_heterogeneity(std::size_t conns, double spread_sec,
                           double tau_sec, std::size_t buffer) {
  Scenario s;
  s.name = "rtt-heterogeneity";
  s.exp = std::make_unique<Experiment>();
  s.warmup = sim::Time::seconds(100.0);
  s.duration = sim::Time::seconds(300.0);
  s.epoch_gap_sec = 2.0;
  s.tahoe_connections = conns;
  DumbbellParams p;
  p.tau = sim::Time::seconds(tau_sec);
  p.buffer_fwd = net::QueueLimit::of(buffer);
  p.buffer_rev = net::QueueLimit::of(buffer);
  s.dumbbell = p;
  // Access delays spread evenly over [0.1 ms, 0.1 ms + spread].
  std::vector<sim::Time> delays;
  for (std::size_t i = 0; i < conns; ++i) {
    const double extra =
        conns > 1 ? spread_sec * static_cast<double>(i) /
                        static_cast<double>(conns - 1)
                  : 0.0;
    delays.push_back(sim::Time::seconds(1e-4 + extra));
  }
  const MultiHostHandles h = build_multihost_dumbbell(*s.exp, p, delays);
  const auto starts = start_times(conns, /*seed=*/42, 5.0);
  for (std::size_t i = 0; i < conns; ++i) {
    tcp::ConnectionConfig cfg;
    cfg.id = static_cast<net::ConnId>(i);
    cfg.src_host = h.sources[i];
    cfg.dst_host = h.sinks[i];
    cfg.start_time = starts[i];
    s.exp->add_connection(cfg);
  }
  return s;
}

Scenario increment_ablation(bool modified, double tau_sec,
                            std::size_t buffer) {
  DumbbellParams p;
  p.tau = sim::Time::seconds(tau_sec);
  p.buffer_fwd = net::QueueLimit::of(buffer);
  p.buffer_rev = net::QueueLimit::of(buffer);
  std::vector<ConnSpec> cs(3);  // the Fig. 2 configuration
  for (auto& c : cs) c.tahoe.modified_ca_increment = modified;
  return make_dumbbell_scenario(
      modified ? "increment-modified" : "increment-original", p,
      std::move(cs), sim::Time::seconds(150.0), sim::Time::seconds(600.0),
      /*epoch_gap=*/8.0);
}

}  // namespace tcpdyn::core
