#include "core/csv_export.h"

#include <algorithm>

#include "util/csv.h"

namespace tcpdyn::core {

namespace {
std::string sanitize(std::string name) {
  std::replace_if(
      name.begin(), name.end(),
      [](char c) { return c == '-' || c == '>' || c == '/'; }, '_');
  return name;
}
}  // namespace

std::vector<std::string> export_csv(const ExperimentResult& result,
                                    const std::string& directory,
                                    const std::string& prefix) {
  std::vector<std::string> written;
  const std::string base = directory + "/" + prefix;

  for (const PortTrace& port : result.ports) {
    const std::string path = base + "_queue_" + sanitize(port.name) + ".csv";
    util::CsvWriter w(path, {"time_s", "packets"});
    for (const auto& pt : port.queue.points()) {
      w.row({pt.time, pt.value});
    }
    written.push_back(path);
  }
  {
    const std::string path = base + "_cwnd.csv";
    util::CsvWriter w(path, {"time_s", "conn", "cwnd"});
    for (const auto& [conn, series] : result.cwnd) {
      for (const auto& pt : series.points()) {
        w.row({pt.time, static_cast<double>(conn), pt.value});
      }
    }
    written.push_back(path);
  }
  {
    const std::string path = base + "_drops.csv";
    util::CsvWriter w(path, {"time_s", "conn", "data", "seq", "port"});
    for (const DropEvent& d : result.drops) {
      w.row({std::to_string(d.time), std::to_string(d.conn),
             d.data ? "1" : "0", std::to_string(d.seq), d.port});
    }
    written.push_back(path);
  }
  {
    const std::string path = base + "_ack_arrivals.csv";
    util::CsvWriter w(path, {"time_s", "conn"});
    for (const auto& [conn, times] : result.ack_arrivals) {
      for (double t : times) {
        w.row({t, static_cast<double>(conn)});
      }
    }
    written.push_back(path);
  }
  return written;
}

}  // namespace tcpdyn::core
