#include "core/topo_scenarios.h"

#include <cmath>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tcpdyn::core {

Scenario make_topo_scenario(const TopoSpec& spec) {
  Scenario s;
  s.name = spec.name;
  s.exp = std::make_unique<Experiment>();
  s.warmup = spec.warmup;
  s.duration = spec.duration;
  s.epoch_gap_sec = spec.epoch_gap_sec;
  s.tahoe_connections = spec.traffic.adaptive_flow_count();
  s.exp->set_monitor_mode(spec.monitor_mode);
  s.exp->set_flow_instrumentation(spec.per_flow_traces);
  const CompiledTopology c = spec.topo.compile(*s.exp);
  spec.traffic.instantiate(*s.exp, c);
  // Faults last: impairments attach now; outages and parameter changes
  // become scheduler events that fire inside Experiment::run.
  spec.faults.apply(*s.exp, c);
  return s;
}

// ---------------------------------------------------------------- chaos

TopoSpec chaos_spec(const ChaosParams& p) {
  if (p.flows == 0) throw std::invalid_argument("chaos needs >= 1 flow");
  TopoSpec spec;
  spec.name = "chaos";
  spec.seed = p.seed;
  spec.warmup = sim::Time::seconds(p.warmup_sec);
  spec.duration = sim::Time::seconds(p.duration_sec);

  Topology t;
  const std::size_t s1 = t.add_switch("S1");
  const std::size_t s2 = t.add_switch("S2");
  t.add_link(s1, s2, p.trunk_bps, sim::Time::seconds(p.tau_sec),
             net::QueueLimit::of(p.buffer));
  for (std::size_t i = 0; i < p.flows; ++i) {
    const std::string n = std::to_string(i + 1);
    const std::size_t a = t.add_host("A" + n);
    const std::size_t b = t.add_host("B" + n);
    t.add_link(a, s1, p.access_bps, sim::Time::microseconds(100));
    t.add_link(b, s2, p.access_bps, sim::Time::microseconds(100));
  }
  t.monitor(s1, s2);
  t.monitor(s2, s1);
  spec.topo = std::move(t);

  const sim::Time spread = sim::Time::seconds(p.start_spread_sec);
  const auto kind_of = [&p](std::size_t conn) {
    return p.cc.empty() ? tcp::CcAlgorithm::kTahoe : p.cc[conn % p.cc.size()];
  };
  for (std::size_t i = 0; i < p.flows; ++i) {
    const std::string n = std::to_string(i + 1);
    ConnSpec fwd;
    fwd.src = "A" + n;
    fwd.dst = "B" + n;
    fwd.kind = kind_of(2 * i);
    fwd.start_spread = spread;
    fwd.seed = util::mix_seed(p.seed, 2 * i);
    spec.traffic.add(std::move(fwd));
    ConnSpec rev;
    rev.src = "B" + n;
    rev.dst = "A" + n;
    rev.kind = kind_of(2 * i + 1);
    rev.start_spread = spread;
    rev.seed = util::mix_seed(p.seed, 2 * i + 1);
    spec.traffic.add(std::move(rev));
  }

  FaultPlan faults;
  faults.set_seed(util::mix_seed(p.seed, 0xfa17));
  if (p.ge_p_good_to_bad > 0.0 && p.ge_loss_bad > 0.0) {
    // Burst loss on the reverse trunk direction only: forward data flows
    // lose ACKs, reverse data flows lose data — the asymmetry the two-way
    // traffic story is about.
    LinkImpairment imp;
    imp.link = {"S1", "S2", FaultDir::kBA};
    net::GilbertElliott ge;
    ge.p_good_to_bad = p.ge_p_good_to_bad;
    ge.p_bad_to_good = p.ge_p_bad_to_good;
    ge.loss_bad = p.ge_loss_bad;
    imp.model.gilbert = ge;
    faults.add_impairment(std::move(imp));
  }
  for (std::size_t k = 0; k < p.flaps && p.outage_sec > 0.0; ++k) {
    LinkOutage o;
    o.link = {"S1", "S2", FaultDir::kBoth};
    o.at = sim::Time::seconds(p.warmup_sec +
                              p.flap_period_sec * static_cast<double>(k + 1));
    o.duration = sim::Time::seconds(p.outage_sec);
    o.policy = p.discard_on_down ? net::DownPolicy::kDiscard
                                 : net::DownPolicy::kDrain;
    faults.add_outage(std::move(o));
  }
  spec.faults = std::move(faults);
  return spec;
}

Scenario chaos_scenario(const ChaosParams& p) {
  return make_topo_scenario(chaos_spec(p));
}

// ------------------------------------------------------------- red wave

TopoSpec red_wave_spec(const RedWaveParams& p) {
  if (p.hops < 1) throw std::invalid_argument("red wave needs >= 1 hop");
  if (p.flows == 0) throw std::invalid_argument("red wave needs >= 1 flow");
  TopoSpec spec;
  spec.name = "red-wave";
  spec.seed = p.seed;
  spec.warmup = sim::Time::seconds(p.warmup_sec);
  spec.duration = sim::Time::seconds(p.duration_sec);

  Topology t;
  const std::size_t n = p.hops + 1;
  std::vector<std::size_t> switches;
  for (std::size_t i = 0; i < n; ++i) {
    switches.push_back(t.add_switch("S" + std::to_string(i + 1)));
  }
  net::QdiscConfig trunk_qdisc = p.qdisc;
  trunk_qdisc.limit = net::QueueLimit::of(p.buffer);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.add_link(switches[i], switches[i + 1], p.trunk_bps,
               sim::Time::seconds(p.tau_sec), net::QueueLimit::of(p.buffer),
               trunk_qdisc);
  }
  for (std::size_t i = 0; i < p.flows; ++i) {
    const std::string suffix = std::to_string(i + 1);
    const std::size_t a = t.add_host("A" + suffix);
    const std::size_t b = t.add_host("B" + suffix);
    t.add_link(a, switches.front(), p.access_bps,
               sim::Time::microseconds(100));
    t.add_link(b, switches.back(), p.access_bps, sim::Time::microseconds(100));
  }
  // Forward trunk hops in chain order: ports[h] is hop h for analyze_waves.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    t.monitor(switches[i], switches[i + 1]);
  }
  spec.topo = std::move(t);

  const sim::Time spread = sim::Time::seconds(p.start_spread_sec);
  for (std::size_t i = 0; i < p.flows; ++i) {
    const std::string suffix = std::to_string(i + 1);
    ConnSpec fwd;
    fwd.src = "A" + suffix;
    fwd.dst = "B" + suffix;
    fwd.kind = p.cc;
    fwd.ecn = p.ecn;
    fwd.start_spread = spread;
    fwd.seed = util::mix_seed(p.seed, 2 * i);
    spec.traffic.add(std::move(fwd));
    ConnSpec rev;
    rev.src = "B" + suffix;
    rev.dst = "A" + suffix;
    rev.kind = p.cc;
    rev.ecn = p.ecn;
    rev.start_spread = spread;
    rev.seed = util::mix_seed(p.seed, 2 * i + 1);
    spec.traffic.add(std::move(rev));
  }
  return spec;
}

Scenario red_wave_scenario(const RedWaveParams& p) {
  return make_topo_scenario(red_wave_spec(p));
}

// ----------------------------------------------------------------- ring

Topology ring_topology(const RingParams& p) {
  Topology t;
  std::vector<std::size_t> switches, hosts;
  for (std::size_t i = 0; i < p.switches; ++i) {
    const std::string n = std::to_string(i + 1);
    switches.push_back(t.add_switch("R" + n));
    hosts.push_back(t.add_host("H" + n));
  }
  for (std::size_t i = 0; i < p.switches; ++i) {
    t.add_link(hosts[i], switches[i], p.access_bps, p.access_delay);
    t.add_link(switches[i], switches[(i + 1) % p.switches], p.trunk_bps,
               p.trunk_delay, p.trunk_buffer);
  }
  t.monitor(switches[0], switches[1]);
  t.monitor(switches[1], switches[0]);
  return t;
}

TopoSpec ring_spec(const RingParams& p) {
  if (p.switches < 3) {
    throw std::invalid_argument("ring needs at least 3 switches");
  }
  TopoSpec spec;
  spec.name = "ring";
  spec.topo = ring_topology(p);
  spec.warmup = sim::Time::seconds(100.0);
  spec.duration = sim::Time::seconds(300.0);
  util::Rng rng(p.seed);
  for (std::size_t k = 0; k < p.flows; ++k) {
    const std::size_t src = rng.next_below(p.switches);
    const std::size_t offset = 1 + rng.next_below(p.switches - 1);
    const std::size_t dst = (src + offset) % p.switches;
    ConnSpec c;
    c.src = "H" + std::to_string(src + 1);
    c.dst = "H" + std::to_string(dst + 1);
    c.start_time =
        sim::Time::seconds(rng.uniform(0.0, p.start_spread_sec));
    spec.traffic.add(std::move(c));
  }
  return spec;
}

Scenario ring_scenario(const RingParams& p) {
  return make_topo_scenario(ring_spec(p));
}

// ---------------------------------------------------------- parking lot

Topology parking_lot_topology(const ParkingLotParams& p) {
  Topology t;
  const std::size_t n = p.hops + 1;
  std::vector<std::size_t> switches, sources, sinks;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string suffix = std::to_string(i + 1);
    switches.push_back(t.add_switch("P" + suffix));
    sources.push_back(t.add_host("X" + suffix));
    sinks.push_back(t.add_host("Y" + suffix));
  }
  for (std::size_t i = 0; i < n; ++i) {
    t.add_link(sources[i], switches[i], p.access_bps, p.access_delay);
    t.add_link(sinks[i], switches[i], p.access_bps, p.access_delay);
    if (i + 1 < n) {
      t.add_link(switches[i], switches[i + 1], p.trunk_bps, p.trunk_delay,
                 p.trunk_buffer);
    }
  }
  t.monitor(switches[0], switches[1]);
  t.monitor(switches[1], switches[0]);
  return t;
}

TopoSpec parking_lot_spec(const ParkingLotParams& p) {
  if (p.hops < 1) {
    throw std::invalid_argument("parking lot needs at least 1 hop");
  }
  TopoSpec spec;
  spec.name = "parking-lot";
  spec.topo = parking_lot_topology(p);
  spec.warmup = sim::Time::seconds(p.warmup_sec);
  spec.duration = sim::Time::seconds(p.duration_sec);
  const sim::Time spread = sim::Time::seconds(p.start_spread_sec);
  if (p.long_flows > 0) {
    ConnSpec lng;
    lng.src = "X1";
    lng.dst = "Y" + std::to_string(p.hops + 1);
    lng.count = p.long_flows;
    lng.start_spread = spread;
    lng.seed = util::mix_seed(p.seed, 0);
    spec.traffic.add(std::move(lng));
  }
  for (std::size_t hop = 0; hop < p.hops && p.cross_per_hop > 0; ++hop) {
    ConnSpec cross;
    cross.src = "X" + std::to_string(hop + 1);
    cross.dst = "Y" + std::to_string(hop + 2);
    cross.count = p.cross_per_hop;
    cross.start_spread = spread;
    cross.seed = util::mix_seed(p.seed, hop + 1);
    spec.traffic.add(std::move(cross));
  }
  return spec;
}

Scenario parking_lot_scenario(const ParkingLotParams& p) {
  return make_topo_scenario(parking_lot_spec(p));
}

// ------------------------------------------------------ datacenter incast

Topology incast_topology(const IncastParams& p) {
  if (p.senders < 1) {
    throw std::invalid_argument("incast needs at least 1 sender");
  }
  Topology t;
  const std::size_t sw = t.add_switch("T");
  const std::size_t sink = t.add_host("R");
  t.add_link(sw, sink, p.link_bps, sim::Time::seconds(p.link_delay_sec),
             net::QueueLimit::of(p.buffer));
  for (std::size_t i = 0; i < p.senders; ++i) {
    t.add_link(t.add_host("S" + std::to_string(i + 1)), sw, p.access_bps,
               sim::Time::seconds(p.access_delay_sec));
  }
  t.monitor(sw, sink);   // the fan-in queue
  t.monitor(sink, sw);   // the ACK path back out
  return t;
}

TopoSpec incast_spec(const IncastParams& p) {
  TopoSpec spec;
  spec.name = "incast";
  spec.topo = incast_topology(p);
  spec.warmup = sim::Time::seconds(p.warmup_sec);
  spec.duration = sim::Time::seconds(p.duration_sec);
  spec.monitor_mode =
      p.streaming ? MonitorMode::kStreaming : MonitorMode::kFull;
  spec.per_flow_traces = p.per_flow_traces;
  for (std::size_t i = 0; i < p.senders; ++i) {
    ConnSpec c;
    c.src = "S" + std::to_string(i + 1);
    c.dst = "R";
    c.kind = p.cc;
    c.count = p.flows_per_sender;
    c.seed = util::mix_seed(p.seed, i);
    if (p.arrival_rate > 0.0) {
      c.arrival_rate = p.arrival_rate;
      c.session_time = sim::Time::seconds(p.session_sec);
    } else {
      c.start_spread = sim::Time::seconds(p.start_spread_sec);
    }
    spec.traffic.add(std::move(c));
  }
  return spec;
}

Scenario incast_scenario(const IncastParams& p) {
  return make_topo_scenario(incast_spec(p));
}

// --------------------------------------------------------------- Waxman

Topology waxman_topology(const WaxmanParams& p) {
  if (p.switches < 2 || p.hosts < 2) {
    throw std::invalid_argument("waxman needs >= 2 switches and >= 2 hosts");
  }
  util::Rng rng(p.seed);
  Topology t;
  std::vector<std::size_t> switches;
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < p.switches; ++i) {
    switches.push_back(t.add_switch("W" + std::to_string(i + 1)));
    xs.push_back(rng.next_double());
    ys.push_back(rng.next_double());
  }
  // Random spanning tree first (connectivity by construction), then extra
  // links with the Waxman probability over the remaining pairs.
  std::vector<std::vector<bool>> linked(p.switches,
                                        std::vector<bool>(p.switches, false));
  for (std::size_t i = 1; i < p.switches; ++i) {
    const std::size_t j = rng.next_below(i);
    t.add_link(switches[i], switches[j], p.trunk_bps, p.trunk_delay,
               p.trunk_buffer);
    linked[i][j] = linked[j][i] = true;
  }
  const double scale = std::sqrt(2.0);  // max distance in the unit square
  for (std::size_t i = 0; i < p.switches; ++i) {
    for (std::size_t j = i + 1; j < p.switches; ++j) {
      const double d = std::hypot(xs[i] - xs[j], ys[i] - ys[j]);
      const double prob = p.alpha * std::exp(-d / (p.beta * scale));
      // Draw unconditionally so the stream advances the same way whether or
      // not the pair is already tree-linked.
      const bool take = rng.next_double() < prob;
      if (take && !linked[i][j]) {
        t.add_link(switches[i], switches[j], p.trunk_bps, p.trunk_delay,
                   p.trunk_buffer);
        linked[i][j] = linked[j][i] = true;
      }
    }
  }
  for (std::size_t k = 0; k < p.hosts; ++k) {
    const std::size_t sw = rng.next_below(p.switches);
    const std::size_t host = t.add_host("H" + std::to_string(k + 1));
    t.add_link(host, switches[sw], p.access_bps, p.access_delay);
  }
  // Monitor the first trunk: the spanning-tree link off switch 2, which is
  // always W2 <-> W1 (next_below(1) == 0).
  t.monitor(switches[1], switches[0]);
  t.monitor(switches[0], switches[1]);
  return t;
}

TopoSpec waxman_spec(const WaxmanParams& p) {
  TopoSpec spec;
  spec.name = "waxman";
  spec.topo = waxman_topology(p);
  spec.warmup = sim::Time::seconds(50.0);
  spec.duration = sim::Time::seconds(200.0);
  // Flow endpoints come from a separate stream so topology and traffic can
  // be varied independently.
  util::Rng rng(util::mix_seed(p.seed, 0xf10f));
  for (std::size_t k = 0; k < p.flows; ++k) {
    const std::size_t src = rng.next_below(p.hosts);
    std::size_t dst = rng.next_below(p.hosts - 1);
    if (dst >= src) ++dst;
    ConnSpec c;
    c.src = "H" + std::to_string(src + 1);
    c.dst = "H" + std::to_string(dst + 1);
    c.start_time = sim::Time::seconds(rng.uniform(0.0, p.start_spread_sec));
    spec.traffic.add(std::move(c));
  }
  return spec;
}

Scenario waxman_scenario(const WaxmanParams& p) {
  return make_topo_scenario(waxman_spec(p));
}

}  // namespace tcpdyn::core
