#include "core/dumbbell.h"

namespace tcpdyn::core {

Topology dumbbell_topology(const DumbbellParams& p) {
  Topology t;
  const std::size_t h1 = t.add_host("H1");
  const std::size_t h2 = t.add_host("H2");
  const std::size_t s1 = t.add_switch("S1");
  const std::size_t s2 = t.add_switch("S2");
  t.add_link(h1, s1, p.access_bps, p.access_delay, p.access_buffer);
  LinkSpec bottleneck;
  bottleneck.a = s1;
  bottleneck.b = s2;
  bottleneck.bits_per_second = p.bottleneck_bps;
  bottleneck.delay = p.tau;
  bottleneck.buffer_ab = p.buffer_fwd;
  bottleneck.buffer_ba = p.buffer_rev;
  bottleneck.policy = p.bottleneck_policy;
  bottleneck.qdisc = p.bottleneck_qdisc;
  t.add_link(bottleneck);
  t.add_link(s2, h2, p.access_bps, p.access_delay, p.access_buffer);
  t.monitor(s1, s2);
  t.monitor(s2, s1);
  return t;
}

DumbbellHandles build_dumbbell(Experiment& exp, const DumbbellParams& p) {
  const CompiledTopology c = dumbbell_topology(p).compile(exp);
  DumbbellHandles h;
  h.host1 = c.id("H1");
  h.host2 = c.id("H2");
  h.switch1 = c.id("S1");
  h.switch2 = c.id("S2");
  return h;
}

MultiHostHandles build_multihost_dumbbell(
    Experiment& exp, const DumbbellParams& p,
    const std::vector<sim::Time>& access_delays) {
  Topology t;
  const std::size_t s1 = t.add_switch("S1");
  const std::size_t s2 = t.add_switch("S2");
  LinkSpec bottleneck;
  bottleneck.a = s1;
  bottleneck.b = s2;
  bottleneck.bits_per_second = p.bottleneck_bps;
  bottleneck.delay = p.tau;
  bottleneck.buffer_ab = p.buffer_fwd;
  bottleneck.buffer_ba = p.buffer_rev;
  bottleneck.policy = p.bottleneck_policy;
  bottleneck.qdisc = p.bottleneck_qdisc;
  t.add_link(bottleneck);
  std::vector<std::string> sources, sinks;
  for (std::size_t i = 0; i < access_delays.size(); ++i) {
    const std::string n = std::to_string(i + 1);
    const std::size_t src = t.add_host("A" + n);
    const std::size_t dst = t.add_host("B" + n);
    t.add_link(src, s1, p.access_bps, access_delays[i], p.access_buffer);
    t.add_link(s2, dst, p.access_bps, access_delays[i], p.access_buffer);
    sources.push_back("A" + n);
    sinks.push_back("B" + n);
  }
  t.monitor(s1, s2);
  t.monitor(s2, s1);
  const CompiledTopology c = t.compile(exp);
  MultiHostHandles h;
  h.switch1 = c.id("S1");
  h.switch2 = c.id("S2");
  for (std::size_t i = 0; i < access_delays.size(); ++i) {
    h.sources.push_back(c.id(sources[i]));
    h.sinks.push_back(c.id(sinks[i]));
  }
  return h;
}

void add_dumbbell_connections(Experiment& exp, const DumbbellHandles& h,
                              const std::vector<ConnSpec>& conns) {
  TrafficMatrix traffic;
  for (ConnSpec c : conns) {
    if (c.src_id == net::kInvalidNode && c.src.empty()) {
      c.src_id = c.forward ? h.host1 : h.host2;
      c.dst_id = c.forward ? h.host2 : h.host1;
    }
    traffic.add(std::move(c));
  }
  traffic.instantiate(exp);
}

}  // namespace tcpdyn::core
