#include "core/dumbbell.h"

namespace tcpdyn::core {

DumbbellHandles build_dumbbell(Experiment& exp, const DumbbellParams& p) {
  auto& net = exp.network();
  DumbbellHandles h;
  h.host1 = net.add_host("H1");
  h.host2 = net.add_host("H2");
  h.switch1 = net.add_switch("S1");
  h.switch2 = net.add_switch("S2");
  net.connect(h.host1, h.switch1, p.access_bps, p.access_delay,
              p.access_buffer, p.access_buffer);
  net.connect(h.switch1, h.switch2, p.bottleneck_bps, p.tau, p.buffer_fwd,
              p.buffer_rev, p.bottleneck_policy);
  net.connect(h.switch2, h.host2, p.access_bps, p.access_delay,
              p.access_buffer, p.access_buffer);
  net.compute_routes();
  exp.monitor(h.switch1, h.switch2);
  exp.monitor(h.switch2, h.switch1);
  return h;
}

MultiHostHandles build_multihost_dumbbell(
    Experiment& exp, const DumbbellParams& p,
    const std::vector<sim::Time>& access_delays) {
  auto& net = exp.network();
  MultiHostHandles h;
  h.switch1 = net.add_switch("S1");
  h.switch2 = net.add_switch("S2");
  net.connect(h.switch1, h.switch2, p.bottleneck_bps, p.tau, p.buffer_fwd,
              p.buffer_rev, p.bottleneck_policy);
  for (std::size_t i = 0; i < access_delays.size(); ++i) {
    const std::string n = std::to_string(i + 1);
    const net::NodeId src = net.add_host("A" + n);
    const net::NodeId dst = net.add_host("B" + n);
    net.connect(src, h.switch1, p.access_bps, access_delays[i],
                p.access_buffer, p.access_buffer);
    net.connect(h.switch2, dst, p.access_bps, access_delays[i],
                p.access_buffer, p.access_buffer);
    h.sources.push_back(src);
    h.sinks.push_back(dst);
  }
  net.compute_routes();
  exp.monitor(h.switch1, h.switch2);
  exp.monitor(h.switch2, h.switch1);
  return h;
}

void add_dumbbell_connections(Experiment& exp, const DumbbellHandles& h,
                              const std::vector<DumbbellConn>& conns) {
  net::ConnId id = 0;
  for (const auto& c : conns) {
    tcp::ConnectionConfig cfg;
    cfg.id = id++;
    cfg.src_host = c.forward ? h.host1 : h.host2;
    cfg.dst_host = c.forward ? h.host2 : h.host1;
    cfg.kind = c.kind;
    cfg.fixed_window = c.fixed_window;
    cfg.data_bytes = c.data_bytes;
    cfg.ack_bytes = c.ack_bytes;
    cfg.maxwnd = c.maxwnd;
    cfg.delayed_ack = c.delayed_ack;
    cfg.pacing_interval = c.pacing_interval;
    cfg.start_time = c.start_time;
    cfg.tahoe = c.tahoe;
    cfg.reno = c.reno;
    exp.add_connection(cfg);
  }
}

}  // namespace tcpdyn::core
