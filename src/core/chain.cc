#include "core/chain.h"

#include <string>

namespace tcpdyn::core {

Topology chain_topology(const ChainParams& p) {
  Topology t;
  std::vector<std::size_t> switches, hosts;
  for (std::size_t i = 0; i < p.switches; ++i) {
    switches.push_back(t.add_switch("S" + std::to_string(i + 1)));
    hosts.push_back(t.add_host("H" + std::to_string(i + 1)));
  }
  for (std::size_t i = 0; i < p.switches; ++i) {
    t.add_link(hosts[i], switches[i], p.access_bps, p.access_delay,
               p.access_buffer);
    if (i + 1 < p.switches) {
      t.add_link(switches[i], switches[i + 1], p.trunk_bps, p.trunk_delay,
                 p.trunk_buffer);
    }
  }
  for (std::size_t i = 0; i + 1 < p.switches; ++i) {
    t.monitor(switches[i], switches[i + 1]);
    t.monitor(switches[i + 1], switches[i]);
  }
  return t;
}

ChainHandles build_chain(Experiment& exp, const ChainParams& p) {
  const CompiledTopology c = chain_topology(p).compile(exp);
  ChainHandles h;
  for (std::size_t i = 0; i < p.switches; ++i) {
    const std::string n = std::to_string(i + 1);
    h.switches.push_back(c.id("S" + n));
    h.hosts.push_back(c.id("H" + n));
  }
  return h;
}

void add_chain_connections(Experiment& exp, const ChainHandles& h,
                           std::size_t count, std::uint64_t seed,
                           sim::Time start_spread) {
  // One shared RNG stream, drawn in the historic per-flow order (endpoint,
  // direction, start jitter), then handed to the TrafficMatrix as fully
  // resolved single-flow specs so instantiation adds no extra draws.
  util::Rng rng(seed);
  const std::size_t n = h.hosts.size();
  TrafficMatrix traffic;
  for (std::size_t i = 0; i < count; ++i) {
    // Path length cycles 1, 2, ..., n-1 so lengths are equally represented.
    const std::size_t hops = 1 + i % (n - 1);
    const std::size_t src = rng.next_below(n - hops);
    const std::size_t dst = src + hops;
    const bool forward = rng.next_double() < 0.5;
    ConnSpec c;
    c.src_id = forward ? h.hosts[src] : h.hosts[dst];
    c.dst_id = forward ? h.hosts[dst] : h.hosts[src];
    c.start_time = sim::Time::seconds(rng.uniform(0.0, start_spread.sec()));
    traffic.add(std::move(c));
  }
  traffic.instantiate(exp);
}

}  // namespace tcpdyn::core
