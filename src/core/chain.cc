#include "core/chain.h"

#include <string>

namespace tcpdyn::core {

ChainHandles build_chain(Experiment& exp, const ChainParams& p) {
  auto& net = exp.network();
  ChainHandles h;
  for (std::size_t i = 0; i < p.switches; ++i) {
    h.switches.push_back(net.add_switch("S" + std::to_string(i + 1)));
    h.hosts.push_back(net.add_host("H" + std::to_string(i + 1)));
  }
  for (std::size_t i = 0; i < p.switches; ++i) {
    net.connect(h.hosts[i], h.switches[i], p.access_bps, p.access_delay,
                p.access_buffer, p.access_buffer);
    if (i + 1 < p.switches) {
      net.connect(h.switches[i], h.switches[i + 1], p.trunk_bps,
                  p.trunk_delay, p.trunk_buffer, p.trunk_buffer);
    }
  }
  net.compute_routes();
  for (std::size_t i = 0; i + 1 < p.switches; ++i) {
    exp.monitor(h.switches[i], h.switches[i + 1]);
    exp.monitor(h.switches[i + 1], h.switches[i]);
  }
  return h;
}

void add_chain_connections(Experiment& exp, const ChainHandles& h,
                           std::size_t count, std::uint64_t seed,
                           sim::Time start_spread) {
  util::Rng rng(seed);
  const std::size_t n = h.hosts.size();
  for (std::size_t i = 0; i < count; ++i) {
    // Path length cycles 1, 2, ..., n-1 so lengths are equally represented.
    const std::size_t hops = 1 + i % (n - 1);
    const std::size_t src = rng.next_below(n - hops);
    const std::size_t dst = src + hops;
    const bool forward = rng.next_double() < 0.5;
    tcp::ConnectionConfig cfg;
    cfg.id = static_cast<net::ConnId>(i);
    cfg.src_host = forward ? h.hosts[src] : h.hosts[dst];
    cfg.dst_host = forward ? h.hosts[dst] : h.hosts[src];
    cfg.start_time = sim::Time::seconds(rng.uniform(0.0, start_spread.sec()));
    exp.add_connection(cfg);
  }
}

}  // namespace tcpdyn::core
