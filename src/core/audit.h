// Packet-lifecycle conservation audit.
//
// Every figure in the paper is an accounting claim — how many packets were
// sent, dropped, and delivered, and when — so the simulator carries its own
// ledger: every packet uid must end a run as exactly one of
//
//   delivered | dropped-at-port | in-queue | in-flight
//
// with byte totals cross-checked against the native QueueCounters /
// HostCounters and, for monitored ports, against recorded transmitter busy
// time. Two strengths exist (see AuditMode):
//
//  * kCounters — audit_counters_check() over the counters every queue and
//    host maintains natively. No observer, no per-packet state; the cost is
//    one pass over the network at end of run. Always on in optimized builds.
//  * kFull — an Audit observer (net::PacketObserver) tracks every uid
//    through the create → enqueue → dequeue → deliver state machine,
//    flags invalid transitions as they happen, and finalize() closes the
//    ledger against the native counters, live queue contents, and port busy
//    time. Default in Debug builds and under the `audit` ctest label.
//
// Experiment::run() performs the configured check automatically and throws
// on any violation, so a conservation bug fails loudly instead of shifting
// a figure by 2%.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "net/observer.h"

namespace tcpdyn::core {

class EventTrace;

// How much lifecycle checking Experiment::run performs.
enum class AuditMode : std::uint8_t {
  kOff,       // no checks; exists for measuring the audit's own overhead
  kCounters,  // cheap native-counter cross-check (optimized-build default)
  kFull,      // per-uid ledger + byte/busy cross-checks (Debug default)
};

#ifndef NDEBUG
inline constexpr AuditMode kDefaultAuditMode = AuditMode::kFull;
#else
inline constexpr AuditMode kDefaultAuditMode = AuditMode::kCounters;
#endif

// "off" | "counters" | "full" (the CLI spelling); nullopt otherwise.
std::optional<AuditMode> parse_audit_mode(std::string_view s);

// Where every packet created during a run ended up. The conservation law:
//   created == delivered + dropped + in_queue + in_flight
// (in_flight: on a wire or inside host processing when the run stopped).
struct AuditTotals {
  std::uint64_t created = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t in_queue = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t bytes_created = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t bytes_dropped = 0;
  std::uint64_t bytes_in_queue = 0;
  // Per-cause drop attribution (always sums to `dropped`):
  //   drops_queue — buffer overflow (drop-tail rejection, random-drop victim)
  //   drops_down  — link-down discards (rejected arrivals + flushed buffer)
  //   drops_fault — wire impairments (loss/corruption after departure)
  std::uint64_t drops_queue = 0;
  std::uint64_t drops_down = 0;
  std::uint64_t drops_fault = 0;
  // ECN CE marks applied by AQM disciplines. Marked packets are admitted and
  // delivered normally, so marks sit outside the conservation law; they are
  // tallied and reconciled against the native QueueCounters separately.
  std::uint64_t marks = 0;
  std::uint64_t bytes_marked = 0;
};

struct AuditReport {
  bool ok = true;  // no violations
  AuditTotals totals;
  std::vector<std::string> violations;
  std::string to_string() const;
};

// The cheap check: for every port,
//   arrivals      == departures     + drops         + queue_length
//   bytes_arrived == bytes_departed + bytes_dropped + queue_length_bytes
// and globally created >= delivered + dropped + in_queue (the remainder,
// packets in flight, must be non-negative; it is returned in totals).
AuditReport audit_counters_check(net::Network& net);

// The full ledger. Install via Network::set_observer before traffic flows
// (Experiment::run does this in kFull mode), then finalize() once the run
// stops. Also forwards every observed event to an EventTrace, since the
// network has a single observer slot.
class Audit : public net::PacketObserver {
 public:
  Audit() = default;

  void set_trace(EventTrace* trace) { trace_ = trace; }

  // net::PacketObserver — validates the uid state machine as events happen.
  void on_create(sim::Time t, const net::Packet& pkt) override;
  void on_enqueue(sim::Time t, const net::OutputPort& port,
                  const net::Packet& pkt) override;
  void on_drop(sim::Time t, const net::OutputPort& port,
               const net::Packet& pkt, net::DropCause cause) override;
  void on_dequeue(sim::Time t, const net::OutputPort& port,
                  const net::Packet& pkt) override;
  void on_mark(sim::Time t, const net::OutputPort& port,
               const net::Packet& pkt) override;
  void on_deliver(sim::Time t, const net::Packet& pkt) override;

  // Closes the ledger at time `now`: every uid must be in a terminal or
  // residual state consistent with the native counters, the live queue
  // contents, and (for ports with a busy record) the transmitter busy time.
  // Includes everything audit_counters_check reports.
  AuditReport finalize(net::Network& net, sim::Time now);

  // --- sharded runs ------------------------------------------------------
  // Each shard keeps its own Audit over the ports and hosts it owns. A
  // packet crossing a shard boundary is handed off between ledgers at the
  // barrier: it must be in-flight here (it departed a boundary port) and
  // must not already exist in the destination ledger — so every crossing
  // packet is attributed to exactly one shard, and double-attribution or
  // loss surfaces as a violation.
  void transfer_in_flight(std::uint64_t uid, Audit& dst);

  // Folds `other` into this audit after all shards stop: ledgers are
  // disjoint by construction (a shared uid is a violation), tallies and
  // totals add. The merged audit is then finalized against the whole
  // network exactly like a serial run's.
  void absorb(Audit&& other);

 private:
  enum class State : std::uint8_t { kInFlight, kInQueue, kDelivered, kDropped };

  // Per-port event tally, reconciled against the port's native
  // QueueCounters in finalize().
  struct PortTally {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t arrival_drops = 0;  // rejected arrivals (incl. down-link)
    std::uint64_t victim_drops = 0;   // evictions (random-drop, down flush)
    std::uint64_t down_drops = 0;     // subset of the above: link-down cause
    std::uint64_t wire_drops = 0;     // post-departure impairment losses
    std::uint64_t bytes_enqueued = 0;
    std::uint64_t bytes_dequeued = 0;
    std::uint64_t bytes_dropped = 0;  // queue-level drops only
    std::uint64_t bytes_victim_drops = 0;
    std::uint64_t bytes_wire_drops = 0;
    std::uint64_t marks = 0;  // ECN CE marks (marked packets also enqueue)
    std::uint64_t bytes_marked = 0;
    std::int64_t tx_ns = 0;  // serialization time of dequeued packets
  };

  static const char* state_name(State s);
  void violation(std::string msg);
  void transition(std::uint64_t uid, State expected, State next,
                  const char* event);

  std::unordered_map<std::uint64_t, State> ledger_;
  std::unordered_map<const net::OutputPort*, PortTally> tallies_;
  AuditTotals totals_;  // created/delivered/dropped filled during the run
  std::vector<std::string> violations_;
  std::size_t suppressed_violations_ = 0;
  EventTrace* trace_ = nullptr;
};

}  // namespace tcpdyn::core
