// The paper's Figure 1 topology: Host-1 — Switch-1 ==bottleneck== Switch-2 —
// Host-2, with parameters defaulted to §2.2 (50 Kbps bottleneck, 10 Mbps
// access links with 0.1 ms delay, 0.1 ms host processing, 500 B data / 50 B
// ACK packets, 20-packet buffers). A thin adapter over core::Topology: the
// declaration order matches the historic hand-rolled builder, so compiled
// networks (node ids, port seeds, routes) are identical.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/conn_spec.h"
#include "core/experiment.h"
#include "core/topology.h"

namespace tcpdyn::core {

struct DumbbellParams {
  std::int64_t bottleneck_bps = 50'000;
  sim::Time tau = sim::Time::seconds(0.01);  // bottleneck propagation delay
  net::QueueLimit buffer_fwd = net::QueueLimit::of(20);  // S1 -> S2
  net::QueueLimit buffer_rev = net::QueueLimit::of(20);  // S2 -> S1
  std::int64_t access_bps = 10'000'000;
  sim::Time access_delay = sim::Time::microseconds(100);
  net::QueueLimit access_buffer = net::QueueLimit::infinite();
  // Discard discipline at the bottleneck (drop-tail in the paper; random
  // drop reproduces the gateway discipline of the studies it cites).
  net::DropPolicy bottleneck_policy = net::DropPolicy::kDropTail;
  // Full discipline config (RED, DRR, ...): when set, both bottleneck
  // directions run it (with buffer_fwd/buffer_rev as limits) and
  // bottleneck_policy is ignored. Unset keeps the historic path byte for
  // byte.
  std::optional<net::QdiscConfig> bottleneck_qdisc;

  // Pipe size P = mu * tau / M in data packets (paper §2.2).
  double pipe_size(std::uint32_t data_bytes = 500) const {
    return static_cast<double>(bottleneck_bps) * tau.sec() /
           (8.0 * static_cast<double>(data_bytes));
  }
};

struct DumbbellHandles {
  net::NodeId host1 = 0, host2 = 0, switch1 = 0, switch2 = 0;
};

// The dumbbell as a declarative Topology (nodes H1, H2, S1, S2; both
// bottleneck transmit ports monitored), for callers that want to extend the
// graph before compiling.
Topology dumbbell_topology(const DumbbellParams& params);

// Builds the topology inside `exp`, computes routes, and monitors the two
// bottleneck transmit ports (port 0: S1->S2 "forward", port 1: S2->S1
// "reverse" in the ExperimentResult).
DumbbellHandles build_dumbbell(Experiment& exp, const DumbbellParams& params);

// Adds connections with ids 0..n-1 in order. Specs that leave src/dst unset
// use the `forward` shorthand (true: Host-1 -> Host-2).
void add_dumbbell_connections(Experiment& exp, const DumbbellHandles& handles,
                              const std::vector<ConnSpec>& conns);

// RTT-heterogeneous variant for the §5 clustering-breakdown claim: one
// source host per connection attached to switch 1 (each with its own access
// propagation delay) and one sink host per connection on switch 2, so
// connections share the bottleneck but differ in round-trip time.
struct MultiHostHandles {
  std::vector<net::NodeId> sources;
  std::vector<net::NodeId> sinks;
  net::NodeId switch1 = 0, switch2 = 0;
};

// Builds the topology for `access_delays.size()` one-way connections,
// computes routes, and monitors both bottleneck ports. Call
// Experiment::add_connection for sources[i] -> sinks[i] afterwards.
MultiHostHandles build_multihost_dumbbell(
    Experiment& exp, const DumbbellParams& params,
    const std::vector<sim::Time>& access_delays);

}  // namespace tcpdyn::core
