// EventTrace: opt-in structured trace of every packet-lifecycle and
// congestion-control event in a run, one JSON object per line (JSONL).
//
// Event vocabulary (the `ev` field):
//   send         data packet handed to its source host
//   ack          ACK packet handed to its source host
//   enqueue      packet admitted to a port buffer      (port, queue length)
//   drop         packet discarded at a port            (cause: queue-tail |
//                queue-victim | down-arrival | down-flush | wire-loss |
//                wire-corrupt; victim: true when the packet had been
//                admitted to the buffer before the drop)
//   dequeue      packet finished serializing, left the buffer for the wire
//   mark         packet ECN-marked (CE) by an AQM discipline instead of
//                dropped; the matching enqueue line follows
//   deliver      packet handed to its destination endpoint
//   rto          retransmission timer expired at a sender
//   cwnd-change  congestion window changed (ACK of new data, or loss)
//
// Every line carries `t` (seconds, 9 decimal places = the simulator's
// nanosecond resolution) and, for packet events, the packet `uid` — the
// same uid the conservation audit tracks, so a trace can be joined against
// ledger states offline. Enable per run via Experiment::enable_trace or per
// grid point via tcpdyn_sweep --trace.
#pragma once

#include <memory>
#include <ostream>
#include <string>

#include "net/observer.h"

namespace tcpdyn::core {

class EventTrace : public net::PacketObserver {
 public:
  // Writes to a caller-owned stream (kept open; caller outlives the trace).
  explicit EventTrace(std::ostream& os) : os_(&os) {}

  // Opens `path` for writing; throws std::runtime_error on failure.
  static std::unique_ptr<EventTrace> to_file(const std::string& path);

  // net::PacketObserver — one line per event.
  void on_create(sim::Time t, const net::Packet& pkt) override;
  void on_enqueue(sim::Time t, const net::OutputPort& port,
                  const net::Packet& pkt) override;
  void on_drop(sim::Time t, const net::OutputPort& port,
               const net::Packet& pkt, net::DropCause cause) override;
  void on_dequeue(sim::Time t, const net::OutputPort& port,
                  const net::Packet& pkt) override;
  void on_mark(sim::Time t, const net::OutputPort& port,
               const net::Packet& pkt) override;
  void on_deliver(sim::Time t, const net::Packet& pkt) override;

  // Transport-level events, forwarded by Experiment from the sender hooks.
  // cwnd changes carry per-algorithm attribution: `algo` names the
  // congestion controller and `why` the CcEvent that moved the window
  // (ack | dup-ack | fast-retransmit | timeout | recovery-exit).
  void rto(sim::Time t, net::ConnId conn);
  void cwnd_change(sim::Time t, net::ConnId conn, double cwnd,
                   const char* algo, const char* why);

  std::uint64_t events_written() const { return events_; }
  void flush();

 private:
  EventTrace(std::unique_ptr<std::ostream> owned);
  void write_line(const char* buf);

  std::unique_ptr<std::ostream> owned_;  // set when to_file() opened it
  std::ostream* os_ = nullptr;
  std::uint64_t events_ = 0;
};

}  // namespace tcpdyn::core
