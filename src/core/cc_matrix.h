// Congestion-control head-to-head matrix: for every ordered pair of
// algorithms (A, B), run a dumbbell in which flows of A and flows of B share
// the forward bottleneck, and report per-algorithm goodput, the row
// algorithm's bandwidth share, and Jain's fairness over all flows in the
// cell. The diagonal measures intra-algorithm fairness; off-diagonal cells
// measure how an algorithm fares against a different controller (the
// CUBIC-vs-Vegas style of question the zoo exists to answer).
//
// Every cell is an independent Experiment with deterministic staggered
// starts, so the whole matrix is a pure function of its parameters — CI
// runs it twice per algorithm set and byte-compares the printed output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/audit.h"
#include "core/scenarios.h"
#include "tcp/congestion_control.h"

namespace tcpdyn::core {

struct CcMatrixParams {
  // Algorithms forming the matrix rows/columns, in order.
  std::vector<tcp::CcAlgorithm> algos = {
      tcp::CcAlgorithm::kTahoe,  tcp::CcAlgorithm::kReno,
      tcp::CcAlgorithm::kNewReno, tcp::CcAlgorithm::kCubic,
      tcp::CcAlgorithm::kVegas,  tcp::CcAlgorithm::kBbr,
      tcp::CcAlgorithm::kFixedWindow};
  double tau_sec = 0.01;
  std::size_t buffer = 20;
  std::size_t flows_per_algo = 1;   // flows of each algorithm per cell
  std::uint32_t fixed_window = 10;  // window for kFixedWindow entrants
  std::uint32_t maxwnd = 1000;
  double warmup_sec = 20.0;
  double duration_sec = 80.0;
  AuditMode audit = AuditMode::kFull;
};

struct CcMatrixCell {
  tcp::CcAlgorithm row = tcp::CcAlgorithm::kTahoe;
  tcp::CcAlgorithm col = tcp::CcAlgorithm::kTahoe;
  double goodput_row = 0.0;  // summed goodput of the row flows (packets/sec)
  double goodput_col = 0.0;
  double share_row = 0.0;    // goodput_row / (goodput_row + goodput_col)
  double jain = 0.0;         // Jain's index over every flow in the cell
  double util_fwd = 0.0;     // forward-bottleneck utilization
};

struct CcMatrixResult {
  std::vector<tcp::CcAlgorithm> algos;
  std::vector<CcMatrixCell> cells;  // row-major, algos.size()^2 entries
  std::uint64_t events = 0;         // scheduler events across all cells
  AuditTotals audit;                // ledger totals summed over cells

  const CcMatrixCell& at(std::size_t row, std::size_t col) const {
    return cells.at(row * algos.size() + col);
  }
};

// Runs all |algos|^2 cells. Each cell's Experiment runs under
// `params.audit`; a conservation violation throws std::logic_error out of
// this call (run() itself is the assertion).
CcMatrixResult run_cc_matrix(const CcMatrixParams& params);

// Two tables — the row algorithm's bandwidth share per cell, and Jain's
// fairness per cell — in a fixed text format suitable for byte-comparison.
void print_cc_matrix(std::ostream& os, const CcMatrixResult& m);

// Mixed-algorithm two-way dumbbell: `conns` flows (half forward, half
// reverse) whose controllers cycle through `algos`. The sweep tool exposes
// it as scenario `ccmix`, so the determinism gate can diff a grid in which
// different controllers share one bottleneck.
Scenario ccmix_twoway(const std::vector<tcp::CcAlgorithm>& algos,
                      std::size_t conns = 6, double tau_sec = 0.01,
                      std::size_t buffer = 20);

}  // namespace tcpdyn::core
