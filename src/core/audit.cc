#include "core/audit.h"

#include <algorithm>
#include <sstream>

#include "core/event_trace.h"
#include "net/port.h"

namespace tcpdyn::core {

namespace {

constexpr std::size_t kMaxViolationMessages = 32;

// Shared by audit_counters_check and Audit::finalize: verifies the per-port
// and global conservation laws over the counters the network maintains
// natively, filling `totals` from them. Appends one message per violated
// invariant.
void counters_check_into(net::Network& net, AuditTotals& totals,
                         std::vector<std::string>& violations) {
  net.for_each_port([&](net::OutputPort& port) {
    const net::QueueCounters& c = port.counters();
    const net::FaultCounters& f = port.fault_counters();
    const std::uint64_t len = port.queue_length();
    if (c.arrivals != c.departures + c.drops + len) {
      std::ostringstream os;
      os << port.name() << ": packet conservation violated: arrivals "
         << c.arrivals << " != departures " << c.departures << " + drops "
         << c.drops << " + queued " << len;
      violations.push_back(os.str());
    }
    const std::uint64_t len_bytes = port.queue_length_bytes();
    if (c.bytes_arrived != c.bytes_departed + c.bytes_dropped + len_bytes) {
      std::ostringstream os;
      os << port.name() << ": byte conservation violated: arrived "
         << c.bytes_arrived << " != departed " << c.bytes_departed
         << " + dropped " << c.bytes_dropped << " + queued " << len_bytes;
      violations.push_back(os.str());
    }
    // Down-link discards are a subset of the queue's native drop count
    // (the queue still counted them, so its own law balances); wire drops
    // happen after the departure count and are added on top.
    if (f.drops_down > c.drops) {
      std::ostringstream os;
      os << port.name() << ": down-link drops " << f.drops_down
         << " exceed total queue drops " << c.drops;
      violations.push_back(os.str());
    }
    totals.dropped += c.drops + f.drops_wire;
    totals.bytes_dropped += c.bytes_dropped + f.bytes_drops_wire;
    totals.drops_queue += c.drops - std::min(f.drops_down, c.drops);
    totals.drops_down += f.drops_down;
    totals.drops_fault += f.drops_wire;
    totals.marks += c.marks;
    totals.bytes_marked += c.bytes_marked;
    totals.in_queue += len;
    totals.bytes_in_queue += len_bytes;
  });
  net.for_each_host([&](net::Host& host) {
    const net::HostCounters& c = host.counters();
    totals.created += c.created;
    totals.delivered += c.delivered;
    totals.bytes_created += c.bytes_created;
    totals.bytes_delivered += c.bytes_delivered;
  });
  const std::uint64_t accounted =
      totals.delivered + totals.dropped + totals.in_queue;
  if (totals.created < accounted) {
    std::ostringstream os;
    os << "global conservation violated: created " << totals.created
       << " < delivered " << totals.delivered << " + dropped "
       << totals.dropped << " + queued " << totals.in_queue;
    violations.push_back(os.str());
  } else {
    totals.in_flight = totals.created - accounted;
  }
  const std::uint64_t bytes_accounted =
      totals.bytes_delivered + totals.bytes_dropped + totals.bytes_in_queue;
  if (totals.bytes_created < bytes_accounted) {
    std::ostringstream os;
    os << "global byte conservation violated: created " << totals.bytes_created
       << " < delivered " << totals.bytes_delivered << " + dropped "
       << totals.bytes_dropped << " + queued " << totals.bytes_in_queue;
    violations.push_back(os.str());
  }
  if (totals.drops_queue + totals.drops_down + totals.drops_fault !=
      totals.dropped) {
    std::ostringstream os;
    os << "drop attribution does not close: queue " << totals.drops_queue
       << " + down " << totals.drops_down << " + fault " << totals.drops_fault
       << " != dropped " << totals.dropped;
    violations.push_back(os.str());
  }
}

}  // namespace

std::optional<AuditMode> parse_audit_mode(std::string_view s) {
  if (s == "off") return AuditMode::kOff;
  if (s == "counters") return AuditMode::kCounters;
  if (s == "full") return AuditMode::kFull;
  return std::nullopt;
}

std::string AuditReport::to_string() const {
  std::ostringstream os;
  os << "audit: created " << totals.created << " = delivered "
     << totals.delivered << " + dropped " << totals.dropped << " + in-queue "
     << totals.in_queue << " + in-flight " << totals.in_flight << " ("
     << totals.bytes_created << " bytes created, " << totals.bytes_delivered
     << " delivered, " << totals.bytes_dropped << " dropped)";
  if (totals.drops_down > 0 || totals.drops_fault > 0) {
    os << "; drop causes: queue " << totals.drops_queue << " + down "
       << totals.drops_down << " + fault " << totals.drops_fault;
  }
  if (totals.marks > 0) {
    os << "; ecn marks " << totals.marks << " (" << totals.bytes_marked
       << " bytes)";
  }
  for (const std::string& v : violations) os << "\n  VIOLATION: " << v;
  return os.str();
}

AuditReport audit_counters_check(net::Network& net) {
  AuditReport report;
  counters_check_into(net, report.totals, report.violations);
  report.ok = report.violations.empty();
  return report;
}

const char* Audit::state_name(State s) {
  switch (s) {
    case State::kInFlight: return "in-flight";
    case State::kInQueue: return "in-queue";
    case State::kDelivered: return "delivered";
    case State::kDropped: return "dropped";
  }
  return "?";
}

void Audit::violation(std::string msg) {
  if (violations_.size() >= kMaxViolationMessages) {
    ++suppressed_violations_;
    return;
  }
  violations_.push_back(std::move(msg));
}

void Audit::transition(std::uint64_t uid, State expected, State next,
                       const char* event) {
  auto it = ledger_.find(uid);
  if (it == ledger_.end()) {
    violation(std::string(event) + " of unknown uid " + std::to_string(uid) +
              " (packet never created)");
    return;
  }
  if (it->second != expected) {
    violation(std::string(event) + " of uid " + std::to_string(uid) +
              " in state " + state_name(it->second) + " (expected " +
              state_name(expected) + ")");
  }
  // Advance regardless, so one bad transition does not cascade into a
  // violation per subsequent event of the same packet.
  it->second = next;
}

void Audit::on_create(sim::Time t, const net::Packet& pkt) {
  auto [it, inserted] = ledger_.emplace(pkt.uid, State::kInFlight);
  if (!inserted) {
    violation("uid " + std::to_string(pkt.uid) +
              " created twice (uid reuse or double send)");
    it->second = State::kInFlight;
  }
  ++totals_.created;
  totals_.bytes_created += pkt.size_bytes;
  if (trace_ != nullptr) trace_->on_create(t, pkt);
}

void Audit::on_enqueue(sim::Time t, const net::OutputPort& port,
                       const net::Packet& pkt) {
  transition(pkt.uid, State::kInFlight, State::kInQueue, "enqueue");
  PortTally& tally = tallies_[&port];
  ++tally.enqueued;
  tally.bytes_enqueued += pkt.size_bytes;
  if (trace_ != nullptr) trace_->on_enqueue(t, port, pkt);
}

void Audit::on_drop(sim::Time t, const net::OutputPort& port,
                    const net::Packet& pkt, net::DropCause cause) {
  transition(pkt.uid,
             net::drop_was_queued(cause) ? State::kInQueue : State::kInFlight,
             State::kDropped, "drop");
  PortTally& tally = tallies_[&port];
  if (net::drop_is_wire(cause)) {
    // Wire losses come after the departure count; they never contribute to
    // the queue-level drop reconciliation.
    ++tally.wire_drops;
    tally.bytes_wire_drops += pkt.size_bytes;
    ++totals_.drops_fault;
  } else {
    if (net::drop_was_queued(cause)) {
      ++tally.victim_drops;
      tally.bytes_victim_drops += pkt.size_bytes;
    } else {
      ++tally.arrival_drops;
    }
    tally.bytes_dropped += pkt.size_bytes;
    if (net::drop_is_down(cause)) {
      ++tally.down_drops;
      ++totals_.drops_down;
    } else {
      ++totals_.drops_queue;
    }
  }
  ++totals_.dropped;
  totals_.bytes_dropped += pkt.size_bytes;
  if (trace_ != nullptr) trace_->on_drop(t, port, pkt, cause);
}

void Audit::on_dequeue(sim::Time t, const net::OutputPort& port,
                       const net::Packet& pkt) {
  transition(pkt.uid, State::kInQueue, State::kInFlight, "dequeue");
  PortTally& tally = tallies_[&port];
  ++tally.dequeued;
  tally.bytes_dequeued += pkt.size_bytes;
  tally.tx_ns += port.transmission_time(pkt).ns();
  if (trace_ != nullptr) trace_->on_dequeue(t, port, pkt);
}

void Audit::on_mark(sim::Time t, const net::OutputPort& port,
                    const net::Packet& pkt) {
  // No ledger transition: the marked packet stays on its normal path (the
  // matching on_enqueue arrives right after this event).
  PortTally& tally = tallies_[&port];
  ++tally.marks;
  tally.bytes_marked += pkt.size_bytes;
  ++totals_.marks;
  totals_.bytes_marked += pkt.size_bytes;
  if (trace_ != nullptr) trace_->on_mark(t, port, pkt);
}

void Audit::on_deliver(sim::Time t, const net::Packet& pkt) {
  transition(pkt.uid, State::kInFlight, State::kDelivered, "deliver");
  ++totals_.delivered;
  totals_.bytes_delivered += pkt.size_bytes;
  if (trace_ != nullptr) trace_->on_deliver(t, pkt);
}

void Audit::transfer_in_flight(std::uint64_t uid, Audit& dst) {
  auto it = ledger_.find(uid);
  if (it == ledger_.end()) {
    violation("cross-shard handoff of unknown uid " + std::to_string(uid) +
              " (never created, or already handed off)");
  } else {
    if (it->second != State::kInFlight) {
      violation("cross-shard handoff of uid " + std::to_string(uid) +
                " in state " + state_name(it->second) +
                " (expected in-flight)");
    }
    ledger_.erase(it);
  }
  auto [dit, inserted] = dst.ledger_.emplace(uid, State::kInFlight);
  if (!inserted) {
    dst.violation("cross-shard handoff of uid " + std::to_string(uid) +
                  " double-attributed: already in destination shard's ledger");
    dit->second = State::kInFlight;
  }
}

void Audit::absorb(Audit&& other) {
  for (const auto& [uid, state] : other.ledger_) {
    auto [it, inserted] = ledger_.emplace(uid, state);
    if (!inserted) {
      violation("uid " + std::to_string(uid) +
                " present in two shard ledgers at merge");
      (void)it;
    }
  }
  for (const auto& [port, tally] : other.tallies_) {
    PortTally& t = tallies_[port];
    t.enqueued += tally.enqueued;
    t.dequeued += tally.dequeued;
    t.arrival_drops += tally.arrival_drops;
    t.victim_drops += tally.victim_drops;
    t.down_drops += tally.down_drops;
    t.wire_drops += tally.wire_drops;
    t.bytes_enqueued += tally.bytes_enqueued;
    t.bytes_dequeued += tally.bytes_dequeued;
    t.bytes_dropped += tally.bytes_dropped;
    t.bytes_victim_drops += tally.bytes_victim_drops;
    t.bytes_wire_drops += tally.bytes_wire_drops;
    t.marks += tally.marks;
    t.bytes_marked += tally.bytes_marked;
    t.tx_ns += tally.tx_ns;
  }
  totals_.created += other.totals_.created;
  totals_.delivered += other.totals_.delivered;
  totals_.dropped += other.totals_.dropped;
  totals_.bytes_created += other.totals_.bytes_created;
  totals_.bytes_delivered += other.totals_.bytes_delivered;
  totals_.bytes_dropped += other.totals_.bytes_dropped;
  totals_.drops_queue += other.totals_.drops_queue;
  totals_.drops_down += other.totals_.drops_down;
  totals_.drops_fault += other.totals_.drops_fault;
  totals_.marks += other.totals_.marks;
  totals_.bytes_marked += other.totals_.bytes_marked;
  for (std::string& v : other.violations_) {
    violation(std::move(v));
  }
  suppressed_violations_ += other.suppressed_violations_;
  other.ledger_.clear();
  other.tallies_.clear();
  other.violations_.clear();
}

AuditReport Audit::finalize(net::Network& net, sim::Time now) {
  AuditReport report;

  // 1. Native-counter conservation (the kCounters check), and the native
  // totals to reconcile the ledger against.
  AuditTotals native;
  counters_check_into(net, native, report.violations);

  // 2. State-machine violations recorded while events streamed in.
  for (std::string& v : violations_) report.violations.push_back(std::move(v));
  violations_.clear();
  if (suppressed_violations_ > 0) {
    report.violations.push_back(
        "+" + std::to_string(suppressed_violations_) +
        " further transition violations suppressed");
  }

  // 3. Close the ledger: every uid ends in exactly one of the four states.
  totals_.in_queue = 0;
  totals_.in_flight = 0;
  std::uint64_t delivered_states = 0, dropped_states = 0;
  for (const auto& [uid, state] : ledger_) {
    switch (state) {
      case State::kInQueue: ++totals_.in_queue; break;
      case State::kInFlight: ++totals_.in_flight; break;
      case State::kDelivered: ++delivered_states; break;
      case State::kDropped: ++dropped_states; break;
    }
  }
  if (totals_.created !=
      totals_.delivered + totals_.dropped + totals_.in_queue +
          totals_.in_flight) {
    std::ostringstream os;
    os << "ledger does not close: created " << totals_.created
       << " != delivered " << totals_.delivered << " + dropped "
       << totals_.dropped << " + in-queue " << totals_.in_queue
       << " + in-flight " << totals_.in_flight;
    report.violations.push_back(os.str());
  }
  if (delivered_states != totals_.delivered ||
      dropped_states != totals_.dropped) {
    report.violations.push_back(
        "ledger terminal states disagree with event counts (delivered " +
        std::to_string(delivered_states) + "/" +
        std::to_string(totals_.delivered) + ", dropped " +
        std::to_string(dropped_states) + "/" +
        std::to_string(totals_.dropped) + ")");
  }

  // 4. Ledger totals vs native counters.
  const auto check_total = [&](const char* what, std::uint64_t ledger,
                               std::uint64_t counters) {
    if (ledger != counters) {
      report.violations.push_back(std::string("ledger ") + what + " " +
                                  std::to_string(ledger) +
                                  " != native counter total " +
                                  std::to_string(counters));
    }
  };
  check_total("created", totals_.created, native.created);
  check_total("delivered", totals_.delivered, native.delivered);
  check_total("dropped", totals_.dropped, native.dropped);
  check_total("queue drops", totals_.drops_queue, native.drops_queue);
  check_total("down drops", totals_.drops_down, native.drops_down);
  check_total("fault drops", totals_.drops_fault, native.drops_fault);
  check_total("bytes created", totals_.bytes_created, native.bytes_created);
  check_total("bytes delivered", totals_.bytes_delivered,
              native.bytes_delivered);
  check_total("bytes dropped", totals_.bytes_dropped, native.bytes_dropped);
  check_total("marks", totals_.marks, native.marks);
  check_total("bytes marked", totals_.bytes_marked, native.bytes_marked);

  // 5. Per-port reconciliation in deterministic (port-map) order: observed
  // events vs native counters vs the live queue, and the busy-time
  // cross-check where a busy record exists.
  std::uint64_t bytes_in_queue = 0;
  std::size_t ports_seen = 0;
  net.for_each_port([&](net::OutputPort& port) {
    static const PortTally kEmpty{};
    auto it = tallies_.find(&port);
    const PortTally& t = it == tallies_.end() ? kEmpty : it->second;
    if (it != tallies_.end()) ++ports_seen;
    const net::QueueCounters& c = port.counters();
    const auto mismatch = [&](const char* what, std::uint64_t observed,
                              std::uint64_t counted) {
      if (observed != counted) {
        report.violations.push_back(port.name() + ": observed " + what + " " +
                                    std::to_string(observed) +
                                    " != native count " +
                                    std::to_string(counted));
      }
    };
    const net::FaultCounters& f = port.fault_counters();
    mismatch("arrivals", t.enqueued + t.arrival_drops, c.arrivals);
    mismatch("departures", t.dequeued, c.departures);
    mismatch("drops", t.arrival_drops + t.victim_drops, c.drops);
    mismatch("dropped bytes", t.bytes_dropped, c.bytes_dropped);
    mismatch("down drops", t.down_drops, f.drops_down);
    mismatch("marks", t.marks, c.marks);
    mismatch("marked bytes", t.bytes_marked, c.bytes_marked);
    mismatch("wire drops", t.wire_drops, f.drops_wire);
    mismatch("wire-dropped bytes", t.bytes_wire_drops, f.bytes_drops_wire);
    const std::int64_t ledger_queued =
        static_cast<std::int64_t>(t.enqueued) -
        static_cast<std::int64_t>(t.dequeued) -
        static_cast<std::int64_t>(t.victim_drops);
    if (ledger_queued != static_cast<std::int64_t>(port.queue_length())) {
      report.violations.push_back(
          port.name() + ": observed occupancy " +
          std::to_string(ledger_queued) + " != live queue length " +
          std::to_string(port.queue_length()));
    }
    const std::int64_t ledger_queued_bytes =
        static_cast<std::int64_t>(t.bytes_enqueued) -
        static_cast<std::int64_t>(t.bytes_dequeued) -
        static_cast<std::int64_t>(t.bytes_victim_drops);
    if (ledger_queued_bytes !=
        static_cast<std::int64_t>(port.queue_length_bytes())) {
      report.violations.push_back(
          port.name() + ": observed queued bytes " +
          std::to_string(ledger_queued_bytes) + " != live queue bytes " +
          std::to_string(port.queue_length_bytes()));
    } else {
      bytes_in_queue += port.queue_length_bytes();
    }
    if (port.busy_record_enabled()) {
      const std::int64_t busy_ns =
          port.busy_in(sim::Time::zero(), now).ns();
      if (port.dynamics_applied()) {
        // Rate changes and aborted serializations break the per-packet size
        // arithmetic below, but the port keeps an exact clock-based ledger
        // of served + aborted + open serialization time: the recorded busy
        // intervals must match it to the nanosecond.
        const std::int64_t accounted = port.busy_accounted_ns();
        if (busy_ns != accounted) {
          std::ostringstream os;
          os << port.name() << ": busy time " << busy_ns
             << "ns != dynamic-port serialization ledger " << accounted
             << "ns";
          report.violations.push_back(os.str());
        }
      } else {
        // Completed serializations must account for the recorded busy time
        // exactly; while a packet is mid-serialization the open interval may
        // exceed the tally by at most that packet's transmission time.
        const std::int64_t slack =
            port.transmitting() && port.queue_length() > 0
                ? port.transmission_time(port.front()).ns()
                : 0;
        const std::int64_t diff = busy_ns - t.tx_ns;
        if (diff < 0 || diff > slack) {
          std::ostringstream os;
          os << port.name() << ": busy time " << busy_ns
             << "ns inconsistent with " << t.tx_ns
             << "ns of completed transmissions (slack " << slack << "ns)";
          report.violations.push_back(os.str());
        }
      }
    }
  });
  if (ports_seen != tallies_.size()) {
    report.violations.push_back(
        std::to_string(tallies_.size() - ports_seen) +
        " port(s) with observed events are not part of the audited network");
  }
  totals_.bytes_in_queue = bytes_in_queue;

  report.totals = totals_;
  report.ok = report.violations.empty();
  return report;
}

}  // namespace tcpdyn::core
