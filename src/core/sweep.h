// Parallel sweep engine for scenario grids. The paper's headline results are
// parameter *maps* — sync-mode regions over (tau, buffer), buffer sweeps,
// fixed-window grids — and every map point is an independent simulation, so
// the engine fans a cartesian grid out over a util::ThreadPool and collects
// one result row per point.
//
// Determinism guarantee: a sweep's output depends only on (grid, sweep seed,
// the point function) — never on the worker count or scheduling. Each point
// gets its own RNG seed, util::mix_seed(sweep seed, point index), and rows
// land in a pre-sized table slot addressed by point index, so `--jobs 1` and
// `--jobs N` produce byte-identical JSON/CSV. CI diffs the two on every
// push.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/scenarios.h"

namespace tcpdyn::core {

// ------------------------------------------------------------------- grid

// One axis of a sweep grid: a named parameter and the values it takes.
struct SweepAxis {
  std::string name;
  std::vector<double> values;
};

// Parses one axis spec. Accepted forms:
//   name=v                  single value
//   name=v1;v2;v3           explicit list
//   name=lo:hi:step         linear, inclusive of hi (step > 0)
//   name=lo:hi:logN         N points log-spaced from lo to hi (lo, hi > 0)
// Throws std::invalid_argument on malformed specs.
SweepAxis parse_axis(const std::string& spec);

// Parses a comma-separated list of axis specs, e.g.
// "tau=0.01:1:log10,buffer=10:80:10".
std::vector<SweepAxis> parse_grid(const std::string& spec);

// A single expanded grid point: parameter values in axis order plus the
// deterministic per-point RNG seed.
struct SweepPoint {
  std::size_t index = 0;
  std::vector<std::pair<std::string, double>> params;
  std::uint64_t seed = 0;

  // Value of a named parameter; throws std::out_of_range if absent.
  double value(const std::string& name) const;
  double value_or(const std::string& name, double fallback) const;
  bool has(const std::string& name) const;
};

// The cartesian product of a set of axes. Points are indexed row-major with
// the LAST axis varying fastest, so "tau=...,buffer=..." enumerates all
// buffers for the first tau, then all buffers for the second tau, etc.
class SweepGrid {
 public:
  SweepGrid() = default;
  explicit SweepGrid(std::vector<SweepAxis> axes);

  std::size_t size() const { return size_; }
  const std::vector<SweepAxis>& axes() const { return axes_; }

  // Expands point `index`, deriving its seed from `sweep_seed`.
  SweepPoint point(std::size_t index, std::uint64_t sweep_seed) const;

 private:
  std::vector<SweepAxis> axes_;
  std::size_t size_ = 1;
};

// ------------------------------------------------------------------ table

// A typed result cell. Doubles are emitted with round-trip precision;
// int64s without a decimal point; strings CSV/JSON-escaped.
using SweepValue = std::variant<double, std::int64_t, std::string>;

// One result row: ordered (column, value) pairs for one grid point.
struct SweepRow {
  std::size_t index = 0;
  std::vector<std::pair<std::string, SweepValue>> cells;

  void add(const std::string& column, SweepValue value);
  // nullptr if the column is absent.
  const SweepValue* find(const std::string& column) const;
  double number(const std::string& column) const;  // throws if absent/string
  std::string text(const std::string& column) const;  // throws if absent
};

// Aggregated sweep results, ordered by point index regardless of which
// worker finished when. Thread safety comes from structure, not locks:
// SweepRunner pre-sizes the row vector and each worker writes only its own
// point's slot.
class SweepTable {
 public:
  SweepTable() = default;
  explicit SweepTable(std::vector<SweepRow> rows) : rows_(std::move(rows)) {}

  const std::vector<SweepRow>& rows() const { return rows_; }
  // Union of row columns, in first-occurrence order.
  std::vector<std::string> columns() const;

  // CSV: header row, then one line per point (missing cells empty).
  void write_csv(std::ostream& os) const;
  // JSON: {"points": [{"index": 0, "<col>": <value>, ...}, ...]}.
  // Deterministic byte-for-byte for a given table.
  void write_json(std::ostream& os) const;
  std::string to_csv() const;
  std::string to_json() const;

 private:
  std::vector<SweepRow> rows_;
};

// ----------------------------------------------------------------- runner

struct SweepOptions {
  std::size_t jobs = 1;      // worker threads; 0 = ThreadPool::default_jobs()
  std::uint64_t seed = 1;    // master sweep seed, mixed into each point
  bool progress = false;     // log progress + ETA at kInfo via util::logging
};

// Computes one result row for one grid point. Runs on a worker thread; must
// not touch shared mutable state (each call owns its simulation).
using SweepFn = std::function<SweepRow(const SweepPoint&)>;

class SweepRunner {
 public:
  SweepRunner(SweepGrid grid, SweepOptions options);

  const SweepGrid& grid() const { return grid_; }

  // Runs `fn` on every grid point across the worker pool and returns the
  // aggregated table (rows in point-index order). If any point throws, the
  // remaining points still run, then the first exception (by point index)
  // propagates.
  SweepTable run(const SweepFn& fn) const;

 private:
  SweepGrid grid_;
  SweepOptions options_;
};

// ---------------------------------------------------------------- helpers

// The standard summary row benches and the CLI share: the point's
// parameters followed by every scalar ScenarioSummary observable
// (utilization, sync modes + correlations, epoch stats, clustering,
// fluctuation, ACK-compression aggregates, oscillation period).
SweepRow summary_row(const SweepPoint& point, const ScenarioSummary& summary);

}  // namespace tcpdyn::core
