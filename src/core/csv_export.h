// Exports ExperimentResult traces to CSV files so the paper's figures can be
// re-plotted with external tooling (gnuplot/matplotlib). One file per trace
// kind, prefixed with the scenario name.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"

namespace tcpdyn::core {

// Writes into `directory` (which must exist):
//   <prefix>_queue_<port>.csv   : time_s, packets        (per monitored port)
//   <prefix>_cwnd.csv           : time_s, conn, cwnd
//   <prefix>_drops.csv          : time_s, conn, data, seq, port
//   <prefix>_ack_arrivals.csv   : time_s, conn
// Returns the paths written. Port names have '-' and '>' mapped to '_' to
// stay filesystem-friendly.
std::vector<std::string> export_csv(const ExperimentResult& result,
                                    const std::string& directory,
                                    const std::string& prefix);

}  // namespace tcpdyn::core
