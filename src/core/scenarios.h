// Scenario factories: one per paper artifact (figure or prose experiment),
// wiring up the exact configuration of §2.2/§3/§4/§5, plus a generic
// summarizer computing every derived quantity the paper reports. Benches,
// tests, and examples all run figures through this layer, so the
// paper-vs-measured comparison lives in exactly one place.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/analysis.h"
#include "core/chain.h"
#include "core/dumbbell.h"
#include "core/experiment.h"

namespace tcpdyn::core {

// A configured, not-yet-run experiment plus the metadata needed to analyze
// it consistently.
struct Scenario {
  std::string name;
  std::unique_ptr<Experiment> exp;
  sim::Time warmup;
  sim::Time duration;
  // Drops separated by more than this belong to different congestion epochs.
  double epoch_gap_sec = 2.0;
  std::size_t tahoe_connections = 0;  // for the acceleration prediction
  DumbbellParams dumbbell;            // valid for dumbbell scenarios
};

// Everything the analysis layer derives from one run.
struct ScenarioSummary {
  ExperimentResult result;
  // Utilization of monitored port 0 / 1 (fwd / rev bottleneck).
  double util_fwd = 0.0;
  double util_rev = 0.0;
  SyncResult queue_sync;  // ports 0 vs 1
  SyncResult cwnd_sync;   // first two Tahoe connections, if present
  EpochStats epochs;
  std::map<net::ConnId, AckCompressionStats> ack;
  ClusteringStats clustering_fwd;
  ClusteringStats clustering_rev;
  FluctuationStats fluct_fwd;
  FluctuationStats fluct_rev;
  std::optional<double> period_fwd;  // oscillation period of fwd queue (sec)
  FlowSummary flows;  // per-flow goodput distribution + Jain's fairness
};

// Runs the scenario and computes the summary. Consumes the scenario's
// experiment (an Experiment can run only once).
ScenarioSummary run_scenario(Scenario& scenario);

// Computes the same summary from a result obtained elsewhere (the sharded
// engine, a replayed trace): run_scenario is this over Experiment::run.
ScenarioSummary summarize_result(ExperimentResult result,
                                 double epoch_gap_sec = 2.0);

// --- §3.1 / Fig. 2: one-way traffic -----------------------------------
// `conns` Tahoe connections Host-1 -> Host-2. Defaults are the figure's:
// 3 connections, tau = 1 s, 20-packet buffers.
Scenario fig2_one_way(std::size_t conns = 3, double tau_sec = 1.0,
                      std::size_t buffer = 20);

// --- §3.2 / Fig. 3: ten connections, five per direction ---------------
Scenario fig3_ten_connections(std::size_t buffer = 30,
                              std::size_t per_direction = 5);

// --- §4.1/§4.3 / Figs. 4-7: two-way traffic, one connection each way ---
// Figs. 4-5: tau = 0.01 s (small pipe, out-of-phase).
// Figs. 6-7: tau = 1 s (large pipe, in-phase).
Scenario fig4_twoway(double tau_sec = 0.01, std::size_t buffer = 20);
Scenario fig6_twoway(double tau_sec = 1.0, std::size_t buffer = 20);

// --- §4.2 / Figs. 8-9: fixed windows 30/25, infinite buffers -----------
Scenario fig8_fixed_window(double tau_sec = 0.01, std::uint32_t w1 = 30,
                           std::uint32_t w2 = 25);

// --- §4.3.3: zero-length-ACK fixed-window system -----------------------
Scenario zero_ack_fixed(std::uint32_t w1, std::uint32_t w2, double tau_sec);

// --- §5: delayed-ACK option on, two-way traffic ------------------------
Scenario delayed_ack_twoway(std::uint32_t maxwnd, double tau_sec = 0.01,
                            std::size_t buffer = 20);

// --- §5: four-switch chain, many connections, 1-3 hop paths ------------
Scenario four_switch_chain(std::size_t connections = 50,
                           std::uint64_t seed = 7);

// --- E12 ablation: paced two-way traffic --------------------------------
// Data packets leave each source no faster than one per bottleneck data
// transmission time; the paper predicts this removes clustering and with it
// ACK-compression.
Scenario paced_twoway(double tau_sec = 0.01, std::size_t buffer = 20);

// --- E14 extension: Reno (fast recovery) under two-way traffic ----------
// Tests the paper's conjecture that ACK-compression and the synchronization
// modes afflict ANY nonpaced window algorithm, not just Tahoe.
Scenario reno_twoway(double tau_sec = 0.01, std::size_t buffer = 20);

// --- E15 ablation: random-drop gateway discipline ------------------------
// Replaces drop-tail at the bottleneck with the Random Drop discipline of
// the studies the paper cites ([4, 5, 10, 18]).
Scenario random_drop_twoway(double tau_sec = 0.01, std::size_t buffer = 20);

// --- E16 — §5 claim: heterogeneous round-trip times break clustering -----
// `spread` scales the per-connection access propagation delays: 0 gives
// identical RTTs (complete clustering); >= one bottleneck data transmission
// time (0.08 s) destroys perfect clustering.
Scenario rtt_heterogeneity(std::size_t conns, double spread_sec,
                           double tau_sec = 0.01, std::size_t buffer = 20);

// --- §2.1 ablation: the paper's modified congestion-avoidance increment --
// modified = false reinstates the original BSD cwnd += 1/cwnd anomaly.
Scenario increment_ablation(bool modified, double tau_sec = 1.0,
                            std::size_t buffer = 20);

}  // namespace tcpdyn::core
