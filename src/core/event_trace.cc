#include "core/event_trace.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "net/port.h"

namespace tcpdyn::core {

EventTrace::EventTrace(std::unique_ptr<std::ostream> owned)
    : owned_(std::move(owned)), os_(owned_.get()) {}

std::unique_ptr<EventTrace> EventTrace::to_file(const std::string& path) {
  auto os = std::make_unique<std::ofstream>(path, std::ios::binary);
  if (!*os) {
    throw std::runtime_error("EventTrace: cannot open '" + path +
                             "' for writing");
  }
  return std::unique_ptr<EventTrace>(new EventTrace(std::move(os)));
}

void EventTrace::write_line(const char* buf) {
  *os_ << buf << '\n';
  ++events_;
}

void EventTrace::flush() { os_->flush(); }

void EventTrace::on_create(sim::Time t, const net::Packet& pkt) {
  char buf[256];
  if (net::is_data(pkt)) {
    std::snprintf(buf, sizeof(buf),
                  "{\"t\":%.9f,\"ev\":\"send\",\"uid\":%llu,\"conn\":%u,"
                  "\"seq\":%u,\"bytes\":%u,\"src\":%u,\"dst\":%u,"
                  "\"retransmit\":%s}",
                  t.sec(), static_cast<unsigned long long>(pkt.uid), pkt.conn,
                  pkt.seq, pkt.size_bytes, pkt.src, pkt.dst,
                  pkt.retransmit ? "true" : "false");
  } else {
    std::snprintf(buf, sizeof(buf),
                  "{\"t\":%.9f,\"ev\":\"ack\",\"uid\":%llu,\"conn\":%u,"
                  "\"ack\":%u,\"bytes\":%u,\"src\":%u,\"dst\":%u}",
                  t.sec(), static_cast<unsigned long long>(pkt.uid), pkt.conn,
                  pkt.ack, pkt.size_bytes, pkt.src, pkt.dst);
  }
  write_line(buf);
}

void EventTrace::on_enqueue(sim::Time t, const net::OutputPort& port,
                            const net::Packet& pkt) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"t\":%.9f,\"ev\":\"enqueue\",\"uid\":%llu,\"port\":\"%s\","
                "\"queue\":%zu}",
                t.sec(), static_cast<unsigned long long>(pkt.uid),
                port.name().c_str(), port.queue_length());
  write_line(buf);
}

void EventTrace::on_drop(sim::Time t, const net::OutputPort& port,
                         const net::Packet& pkt, net::DropCause cause) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"t\":%.9f,\"ev\":\"drop\",\"uid\":%llu,\"port\":\"%s\","
                "\"conn\":%u,\"kind\":\"%s\",\"seq\":%u,\"cause\":\"%s\","
                "\"victim\":%s}",
                t.sec(), static_cast<unsigned long long>(pkt.uid),
                port.name().c_str(), pkt.conn,
                net::is_data(pkt) ? "data" : "ack",
                net::is_data(pkt) ? pkt.seq : pkt.ack,
                net::drop_cause_name(cause),
                net::drop_was_queued(cause) ? "true" : "false");
  write_line(buf);
}

void EventTrace::on_dequeue(sim::Time t, const net::OutputPort& port,
                            const net::Packet& pkt) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"t\":%.9f,\"ev\":\"dequeue\",\"uid\":%llu,\"port\":\"%s\","
                "\"queue\":%zu}",
                t.sec(), static_cast<unsigned long long>(pkt.uid),
                port.name().c_str(), port.queue_length());
  write_line(buf);
}

void EventTrace::on_mark(sim::Time t, const net::OutputPort& port,
                         const net::Packet& pkt) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"t\":%.9f,\"ev\":\"mark\",\"uid\":%llu,\"port\":\"%s\","
                "\"conn\":%u,\"seq\":%u}",
                t.sec(), static_cast<unsigned long long>(pkt.uid),
                port.name().c_str(), pkt.conn, pkt.seq);
  write_line(buf);
}

void EventTrace::on_deliver(sim::Time t, const net::Packet& pkt) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"t\":%.9f,\"ev\":\"deliver\",\"uid\":%llu,\"conn\":%u,"
                "\"kind\":\"%s\"}",
                t.sec(), static_cast<unsigned long long>(pkt.uid), pkt.conn,
                net::is_data(pkt) ? "data" : "ack");
  write_line(buf);
}

void EventTrace::rto(sim::Time t, net::ConnId conn) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "{\"t\":%.9f,\"ev\":\"rto\",\"conn\":%u}",
                t.sec(), conn);
  write_line(buf);
}

void EventTrace::cwnd_change(sim::Time t, net::ConnId conn, double cwnd,
                             const char* algo, const char* why) {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"t\":%.9f,\"ev\":\"cwnd-change\",\"conn\":%u,"
                "\"cwnd\":%.6f,\"algo\":\"%s\",\"why\":\"%s\"}",
                t.sec(), conn, cwnd, algo, why);
  write_line(buf);
}

}  // namespace tcpdyn::core
