// Experiment: owns a simulator, a network, and a set of connections, and
// instruments designated ports (queue-length traces, drop events, departure
// order) and all connections (cwnd traces, ACK arrival times at sources).
// Running it produces an ExperimentResult that the analysis layer and the
// bench harnesses consume.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/audit.h"
#include "core/event_trace.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "tcp/connection.h"
#include "util/streaming_series.h"
#include "util/time_series.h"

namespace tcpdyn::core {

// One packet drop at a monitored port.
struct DropEvent {
  double time = 0.0;          // seconds
  net::ConnId conn = 0;
  bool data = true;           // false => ACK drop
  std::uint32_t seq = 0;
  std::string port;           // e.g. "S1->S2"
};

// One packet departing (starting transmission at) a monitored port.
struct Departure {
  double time = 0.0;
  net::ConnId conn = 0;
  bool data = true;
};

// Trace of one monitored transmit port.
struct PortTrace {
  std::string name;
  util::TimeSeries queue;     // queue length in packets, event-driven
  double utilization = 0.0;   // busy fraction over the measurement window
  net::QueueCounters counters;
  // Every packet departure in order (data and ACK): the paper's clustering
  // claim is about consecutive queue occupants belonging to one connection,
  // which in two-way traffic mixes one connection's data with the other's
  // ACKs in the same queue.
  std::vector<Departure> departures;
  // Streaming monitor mode: `queue` and `departures` stay empty (memory is
  // independent of run length) and this summary carries the queue
  // statistics instead. `streaming` says which representation is filled.
  bool streaming = false;
  util::StreamingSummary queue_summary;
};

// How monitored ports record their traces. kFull keeps the exact queue
// TimeSeries, every departure, and every drop event — memory grows with run
// length. kStreaming keeps O(1) state per port (util::StreamingSeries) and
// aggregate counters only, so a million-flow run's monitors stay flat.
enum class MonitorMode : std::uint8_t { kFull, kStreaming };

struct ExperimentResult {
  double t_start = 0.0;       // measurement window start (sec)
  double t_end = 0.0;         // measurement window end (sec)
  double data_tx_time = 0.0;  // data-packet transmission time on port 0 (sec)
  std::vector<PortTrace> ports;
  std::vector<DropEvent> drops;                       // at monitored ports
  std::map<net::ConnId, util::TimeSeries> cwnd;       // adaptive senders only
  std::map<net::ConnId, std::vector<double>> ack_arrivals;  // at data sources
  // Accepted RTT measurements per connection: (sample time, rtt), seconds.
  std::map<net::ConnId, std::vector<std::pair<double, double>>> rtt_samples;
  std::map<net::ConnId, tcp::SenderCounters> senders;
  std::map<net::ConnId, std::uint64_t> delivered;     // in-order packets
                                                      // delivered inside the
                                                      // measurement window
  // Conservation-audit totals for the whole run (see core/audit.h). Filled
  // according to the configured AuditMode; zeros when the audit is off.
  AuditTotals audit;
};

class Experiment {
 public:
  Experiment() : net_(sim_) {}
  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  sim::Simulator& sim() { return sim_; }
  net::Network& network() { return net_; }

  // Adds a connection (the network's routes must already be computed) and
  // instruments it: cwnd trace for Tahoe senders, ACK-arrival trace at the
  // source host.
  tcp::Connection& add_connection(const tcp::ConnectionConfig& config);

  std::size_t connection_count() const { return conns_.size(); }
  tcp::Connection& connection(std::size_t i) { return *conns_.at(i); }

  // Attaches queue/drop/departure tracing to the transmit port from->to.
  // Ports are reported in ExperimentResult::ports in monitor() call order.
  void monitor(net::NodeId from, net::NodeId to);

  // Selects the monitor representation (default kFull). Must be called
  // before the first monitor() — the recording hooks are chosen per port at
  // monitor() time.
  void set_monitor_mode(MonitorMode mode);
  MonitorMode monitor_mode() const { return monitor_mode_; }

  // When off, add_connection skips the per-flow hooks (cwnd trace, RTT
  // samples, loss events, ACK arrivals at the source host): flows carry
  // aggregate SenderCounters only. The flyweight setting for runs whose
  // flow count makes per-flow traces unaffordable; applies to connections
  // added after the call.
  void set_flow_instrumentation(bool on);
  bool flow_instrumentation() const { return instrument_flows_; }

  // A one-shot timer owned by this experiment, bound to its simulator —
  // the RAII home for scripted interventions (fault plans). References
  // stay valid for the experiment's lifetime.
  sim::Timer& add_timer();
  // Variant bound to an explicit simulator: in sharded runs a fault shot
  // must fire on the clock of the shard owning the port it manipulates.
  sim::Timer& add_timer(sim::Simulator& sim);

  // Strength of the conservation check run() performs (default: kFull in
  // Debug builds, kCounters otherwise). run() throws std::logic_error if
  // the check finds a violation.
  void set_audit_mode(AuditMode mode);
  AuditMode audit_mode() const { return audit_mode_; }

  // Enables the JSONL event trace (see core/event_trace.h) for this run.
  // Must be called before run(). The file variant throws std::runtime_error
  // if the path cannot be opened; the stream variant writes to a
  // caller-owned stream. Tracing forces at least a full-ledger observer.
  void enable_trace(const std::string& path);
  void enable_trace(std::ostream& os);

  // Runs warmup + duration and returns traces/metrics for the measurement
  // window [warmup, warmup + duration]. May be called once per Experiment.
  ExperimentResult run(sim::Time warmup, sim::Time duration);

 private:
  // The sharded engine drives an Experiment through its private surface:
  // it replaces run()'s event loop with barrier rounds over shard
  // simulators but reuses the instrumentation, assembly, and audit
  // machinery unchanged (see core/shard_engine.h).
  friend class ShardedEngine;

  struct MonitoredPort {
    net::OutputPort* port;
    util::TimeSeries queue;
    std::vector<Departure> departures;
    // Streaming mode: fixed-memory stats + a short tail of recent points.
    util::StreamingSeries stream{64};
  };

  void hook_host(net::NodeId host_id);

  // Result assembly shared by run() and the sharded engine: port traces,
  // drops, per-connection series, and window-relative delivery counts.
  // Leaves the audit section to the caller (serial and sharded runs close
  // their ledgers differently).
  ExperimentResult assemble_result(
      sim::Time warmup, sim::Time end,
      const std::map<net::ConnId, std::uint64_t>& delivered_at_warmup);

  sim::Simulator sim_;
  net::Network net_;
  std::vector<std::unique_ptr<tcp::Connection>> conns_;
  std::vector<std::unique_ptr<MonitoredPort>> monitored_;
  std::vector<DropEvent> drops_;
  std::map<net::ConnId, util::TimeSeries> cwnd_;
  std::map<net::ConnId, std::vector<double>> ack_arrivals_;
  std::map<net::ConnId, std::vector<std::pair<double, double>>> rtt_samples_;
  std::vector<net::NodeId> hooked_hosts_;
  std::deque<sim::Timer> timers_;  // deque: stable references as it grows
  MonitorMode monitor_mode_ = MonitorMode::kFull;
  bool instrument_flows_ = true;
  AuditMode audit_mode_ = kDefaultAuditMode;
  std::unique_ptr<Audit> audit_;
  std::unique_ptr<EventTrace> trace_;
  bool ran_ = false;
};

}  // namespace tcpdyn::core
