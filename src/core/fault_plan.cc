#include "core/fault_plan.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/experiment.h"
#include "core/topology.h"
#include "net/network.h"
#include "net/port.h"
#include "util/rng.h"

namespace tcpdyn::core {

namespace {

[[noreturn]] void fail(int lineno, const std::string& msg) {
  throw std::invalid_argument("fault directive, line " +
                              std::to_string(lineno) + ": " + msg);
}

double to_double(const std::string& s, int lineno, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    fail(lineno, std::string("bad ") + what + " '" + s + "'");
  }
}

double to_prob(const std::string& s, int lineno, const char* what) {
  const double v = to_double(s, lineno, what);
  if (v < 0.0 || v > 1.0) {
    fail(lineno, std::string(what) + " must be in [0,1], got '" + s + "'");
  }
  return v;
}

std::int64_t to_int64(const std::string& s, int lineno, const char* what) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return static_cast<std::int64_t>(v);
  } catch (const std::exception&) {
    fail(lineno, std::string("bad ") + what + " '" + s + "'");
  }
}

// Extracts an optional trailing dir=ab|ba|both token, removing it from
// `args` so the positional grammar below sees only its own operands.
FaultDir take_dir(std::vector<std::string>& args, int lineno) {
  for (auto it = args.begin(); it != args.end(); ++it) {
    if (it->rfind("dir=", 0) != 0) continue;
    const std::string v = it->substr(4);
    args.erase(it);
    if (v == "ab") return FaultDir::kAB;
    if (v == "ba") return FaultDir::kBA;
    if (v == "both") return FaultDir::kBoth;
    fail(lineno, "bad dir '" + v + "' (ab|ba|both)");
  }
  return FaultDir::kBoth;
}

void want(const std::vector<std::string>& args, std::size_t n,
          const char* usage, int lineno) {
  if (args.size() != n) fail(lineno, std::string("usage: ") + usage);
}

}  // namespace

void parse_fault_directive(FaultPlan& plan, const std::vector<std::string>& in,
                           int lineno) {
  if (in.empty()) fail(lineno, "empty fault directive");
  std::vector<std::string> args(in.begin() + 1, in.end());
  const std::string& kind = in.front();
  if (kind == "seed") {
    want(args, 1, "seed N", lineno);
    plan.set_seed(
        static_cast<std::uint64_t>(to_int64(args[0], lineno, "seed")));
    return;
  }
  const FaultDir dir = take_dir(args, lineno);
  if (kind == "down") {
    // Optional trailing policy word.
    net::DownPolicy policy = net::DownPolicy::kDrain;
    if (!args.empty() &&
        (args.back() == "drain" || args.back() == "discard")) {
      policy = args.back() == "discard" ? net::DownPolicy::kDiscard
                                        : net::DownPolicy::kDrain;
      args.pop_back();
    }
    want(args, 4, "down A B AT_SEC DUR_SEC [drain|discard] [dir=...]", lineno);
    LinkOutage o;
    o.link = {args[0], args[1], dir};
    o.at = sim::Time::seconds(to_double(args[2], lineno, "outage time"));
    o.duration =
        sim::Time::seconds(to_double(args[3], lineno, "outage duration"));
    o.policy = policy;
    plan.add_outage(std::move(o));
    return;
  }
  if (kind == "rate") {
    want(args, 4, "rate A B AT_SEC BPS [dir=...]", lineno);
    RateChange c;
    c.link = {args[0], args[1], dir};
    c.at = sim::Time::seconds(to_double(args[2], lineno, "change time"));
    c.bits_per_second = to_int64(args[3], lineno, "rate");
    if (c.bits_per_second <= 0) fail(lineno, "rate must be positive");
    plan.add_rate_change(std::move(c));
    return;
  }
  if (kind == "delay") {
    want(args, 4, "delay A B AT_SEC SEC [dir=...]", lineno);
    DelayChange c;
    c.link = {args[0], args[1], dir};
    c.at = sim::Time::seconds(to_double(args[2], lineno, "change time"));
    c.delay = sim::Time::seconds(to_double(args[3], lineno, "delay"));
    plan.add_delay_change(std::move(c));
    return;
  }
  if (kind == "loss") {
    want(args, 3, "loss A B PROB [dir=...]", lineno);
    LinkImpairment i;
    i.link = {args[0], args[1], dir};
    i.model.loss = to_prob(args[2], lineno, "loss probability");
    plan.add_impairment(std::move(i));
    return;
  }
  if (kind == "gilbert") {
    want(args, 6,
         "gilbert A B P_GB P_BG LOSS_GOOD LOSS_BAD [dir=...]", lineno);
    LinkImpairment i;
    i.link = {args[0], args[1], dir};
    net::GilbertElliott ge;
    ge.p_good_to_bad = to_prob(args[2], lineno, "p_good_to_bad");
    ge.p_bad_to_good = to_prob(args[3], lineno, "p_bad_to_good");
    ge.loss_good = to_prob(args[4], lineno, "loss_good");
    ge.loss_bad = to_prob(args[5], lineno, "loss_bad");
    i.model.gilbert = ge;
    plan.add_impairment(std::move(i));
    return;
  }
  if (kind == "corrupt") {
    want(args, 3, "corrupt A B PROB [dir=...]", lineno);
    LinkImpairment i;
    i.link = {args[0], args[1], dir};
    i.model.corrupt = to_prob(args[2], lineno, "corruption probability");
    plan.add_impairment(std::move(i));
    return;
  }
  if (kind == "reorder") {
    want(args, 4, "reorder A B PROB MAX_SEC [dir=...]", lineno);
    LinkImpairment i;
    i.link = {args[0], args[1], dir};
    i.model.reorder = to_prob(args[2], lineno, "reorder probability");
    const double max_sec = to_double(args[3], lineno, "reorder bound");
    if (max_sec < 0) fail(lineno, "reorder bound must be non-negative");
    i.model.reorder_max = sim::Time::seconds(max_sec);
    plan.add_impairment(std::move(i));
    return;
  }
  fail(lineno, "unknown fault kind '" + kind +
                   "' (down|rate|delay|loss|gilbert|corrupt|reorder|seed)");
}

FaultPlan load_fault_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open fault file '" + path + "'");
  FaultPlan plan;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::vector<std::string> words;
    std::string w;
    while (ls >> w) words.push_back(w);
    if (words.empty()) continue;
    // Accept both bare directives and the .topo spelling with the leading
    // `fault` keyword, so a stanza can be copied between the two formats.
    if (words.front() == "fault") words.erase(words.begin());
    parse_fault_directive(plan, words, lineno);
  }
  return plan;
}

namespace {

// A transmit port an entry applies to, with the node that owns it — the
// shard whose clock any scripted shot against the port must fire on.
struct ResolvedPort {
  net::OutputPort* port;
  net::NodeId owner;
};

// The transmit ports an entry applies to, in (a->b, b->a) order.
std::vector<ResolvedPort> resolve_ports(Experiment& exp,
                                        const CompiledTopology& topo,
                                        const FaultLinkRef& link) {
  net::NodeId a, b;
  try {
    a = topo.id(link.a);
    b = topo.id(link.b);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("fault plan references unknown node in link " +
                                link.a + " - " + link.b);
  }
  std::vector<ResolvedPort> ports;
  if (link.dir != FaultDir::kBA) {
    net::OutputPort* p = exp.network().port_between(a, b);
    if (p == nullptr) {
      throw std::invalid_argument("fault plan references missing link " +
                                  link.a + " -> " + link.b);
    }
    ports.push_back({p, a});
  }
  if (link.dir != FaultDir::kAB) {
    net::OutputPort* p = exp.network().port_between(b, a);
    if (p == nullptr) {
      throw std::invalid_argument("fault plan references missing link " +
                                  link.b + " -> " + link.a);
    }
    ports.push_back({p, b});
  }
  return ports;
}

// The simulator a port's shots schedule on — the owning node's shard clock
// under a sharded run, the experiment-wide simulator otherwise. In
// deterministic-key mode the shot's key stream is the owning node's, so the
// fault schedule orders identically at any shard count.
sim::Simulator& shot_sim(Experiment& exp, net::NodeId owner) {
  sim::Simulator& sim = exp.network().sim_for(owner);
  if (sim.det_context() != nullptr) {
    sim.set_det_context(exp.network().node(owner).det_context());
  }
  return sim;
}

}  // namespace

void FaultPlan::apply(Experiment& exp, const CompiledTopology& topo) const {
  // Impairments first: merge every entry targeting the same port into one
  // model, then attach each with a stream seeded by first-reference order —
  // a pure function of the plan's declaration sequence.
  std::map<net::OutputPort*, net::Impairment> merged;
  std::vector<net::OutputPort*> order;
  for (const LinkImpairment& entry : impairments_) {
    for (const ResolvedPort& rp : resolve_ports(exp, topo, entry.link)) {
      net::OutputPort* port = rp.port;
      auto [it, inserted] = merged.try_emplace(port);
      if (inserted) order.push_back(port);
      net::Impairment& m = it->second;
      if (entry.model.loss > 0.0) m.loss = entry.model.loss;
      if (entry.model.gilbert.has_value()) m.gilbert = entry.model.gilbert;
      if (entry.model.corrupt > 0.0) m.corrupt = entry.model.corrupt;
      if (entry.model.reorder > 0.0) {
        m.reorder = entry.model.reorder;
        m.reorder_max = entry.model.reorder_max;
      }
    }
  }
  for (std::size_t k = 0; k < order.size(); ++k) {
    order[k]->attach_impairment(merged[order[k]],
                                util::mix_seed(seed_, k));
  }

  // Scripted interventions ride on experiment-owned RAII timers: the
  // Experiment outlives every shot, and arm_at preserves schedule order (one
  // schedule_at per intervention, in declaration order), so runs are byte
  // identical to the former raw schedule_at calls.
  for (const LinkOutage& o : outages_) {
    for (const ResolvedPort& rp : resolve_ports(exp, topo, o.link)) {
      net::OutputPort* port = rp.port;
      auto down = [port, policy = o.policy] {
        port->set_down_policy(policy);
        port->set_link_up(false);
      };
      static_assert(sim::Scheduler::Action::fits<decltype(down)>,
                    "link-down event must not heap-allocate");
      sim::Simulator& sim = shot_sim(exp, rp.owner);
      exp.add_timer(sim).arm_at(o.at, std::move(down));
      auto up = [port] { port->set_link_up(true); };
      static_assert(sim::Scheduler::Action::fits<decltype(up)>,
                    "link-up event must not heap-allocate");
      exp.add_timer(sim).arm_at(o.at + o.duration, std::move(up));
    }
  }
  for (const RateChange& c : rate_changes_) {
    for (const ResolvedPort& rp : resolve_ports(exp, topo, c.link)) {
      net::OutputPort* port = rp.port;
      auto change = [port, bps = c.bits_per_second] { port->set_rate(bps); };
      static_assert(sim::Scheduler::Action::fits<decltype(change)>,
                    "rate-change event must not heap-allocate");
      exp.add_timer(shot_sim(exp, rp.owner)).arm_at(c.at, std::move(change));
    }
  }
  for (const DelayChange& c : delay_changes_) {
    for (const ResolvedPort& rp : resolve_ports(exp, topo, c.link)) {
      net::OutputPort* port = rp.port;
      auto change = [port, delay = c.delay] {
        port->set_propagation_delay(delay);
      };
      static_assert(sim::Scheduler::Action::fits<decltype(change)>,
                    "delay-change event must not heap-allocate");
      exp.add_timer(shot_sim(exp, rp.owner)).arm_at(c.at, std::move(change));
    }
  }
}

}  // namespace tcpdyn::core
